package bench

import (
	"fmt"

	"maxwarp/internal/graph"
	"maxwarp/internal/report"
)

// E1GraphTable reproduces the evaluation's dataset table: every workload
// with its size and degree statistics. The degree-skew columns (CV, Gini,
// max) are the properties the rest of the evaluation pivots on.
func E1GraphTable(cfg Config) ([]*report.Table, error) {
	cfg = cfg.WithDefaults()
	ws, err := buildWorkloads(cfg)
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		ID:    "E1",
		Title: "Graph instances and degree statistics (synthetic stand-ins for the paper's datasets)",
		Columns: []string{
			"graph", "V", "E", "avg deg", "max deg", "deg CV", "gini", "p99", "zero-deg",
		},
		Notes: []string{
			fmt.Sprintf("scale=%d seed=%d; see DESIGN.md for the dataset substitution rationale", cfg.Scale, cfg.Seed),
		},
	}
	for _, w := range ws {
		s := graph.Stats(w.g)
		t.AddRow(w.name,
			report.I(int64(s.NumVertices)), report.I(int64(s.NumEdges)),
			report.F(s.AvgDegree, 2), report.I(int64(s.MaxDegree)),
			report.F(s.CV, 2), report.F(s.Gini, 2),
			report.I(int64(s.P99)), report.I(int64(s.ZeroDegree)))
	}
	return []*report.Table{t}, nil
}

// E2DegreeHistogram reproduces the degree-distribution figure: log2-bucketed
// out-degree counts per workload, the visual evidence of power-law skew.
func E2DegreeHistogram(cfg Config) ([]*report.Table, error) {
	cfg = cfg.WithDefaults()
	ws, err := buildWorkloads(cfg)
	if err != nil {
		return nil, err
	}
	type hist struct {
		zero    int
		buckets []int
	}
	hists := make([]hist, len(ws))
	maxBuckets := 0
	for i, w := range ws {
		z, b := graph.DegreeHistogram(w.g)
		hists[i] = hist{zero: z, buckets: b}
		if len(b) > maxBuckets {
			maxBuckets = len(b)
		}
	}
	t := &report.Table{
		ID:    "E2",
		Title: "Out-degree histogram (vertices per log2 degree bucket)",
		Notes: []string{"a long right tail = the workload imbalance the paper attacks"},
	}
	t.Columns = append(t.Columns, "degree bucket")
	for _, w := range ws {
		t.Columns = append(t.Columns, w.name)
	}
	addRow := func(label string, get func(h hist) int) {
		cells := []string{label}
		for _, h := range hists {
			cells = append(cells, report.I(int64(get(h))))
		}
		t.AddRow(cells...)
	}
	addRow("0", func(h hist) int { return h.zero })
	for b := 0; b < maxBuckets; b++ {
		lo := 1 << b
		hi := 1<<(b+1) - 1
		label := fmt.Sprintf("%d-%d", lo, hi)
		if lo == hi {
			label = fmt.Sprintf("%d", lo)
		}
		bb := b
		addRow(label, func(h hist) int {
			if bb < len(h.buckets) {
				return h.buckets[bb]
			}
			return 0
		})
	}
	return []*report.Table{t}, nil
}
