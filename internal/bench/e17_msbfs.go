package bench

import (
	"fmt"

	"maxwarp/internal/gpualgo"
	"maxwarp/internal/graph"
	"maxwarp/internal/report"
)

// E17MSBFS measures bit-parallel multi-source BFS against independent runs:
// how much adjacency-scan work a batch of B sources shares. Expected shape:
// batching wins by a large factor on small-diameter graphs (each vertex is
// scanned a handful of times regardless of B) and the advantage grows with
// the batch size until the bitmask is full.
func E17MSBFS(cfg Config) ([]*report.Table, error) {
	cfg = cfg.WithDefaults()
	ws, err := buildWorkloads(cfg)
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		ID:      "E17",
		Title:   "Multi-source BFS: bit-parallel batch vs independent runs (K=32)",
		Columns: []string{"graph", "batch", "batch Mcycles", "independent Mcycles", "sharing speedup"},
	}
	t.ChartSpec = &report.ChartSpec{GroupCol: 0, BarCol: 1, ValueCol: 4, Unit: "sharing speedup x"}
	fullK := cfg.Device.WarpWidth
	for _, w := range ws {
		n := w.g.NumVertices()
		for _, batch := range []int{4, 16, 31} {
			sources := make([]graph.VertexID, batch)
			for i := range sources {
				sources[i] = graph.VertexID((i*997 + 13) % n)
			}
			d, err := newDevice(cfg)
			if err != nil {
				return nil, err
			}
			dg := gpualgo.Upload(d, w.g)
			ms, err := gpualgo.MSBFS(d, dg, sources, gpualgo.Options{K: fullK, BlockSize: cfg.BlockSize})
			if err != nil {
				return nil, fmt.Errorf("%s batch=%d: %w", w.name, batch, err)
			}
			var indep int64
			for _, src := range sources {
				d2, err := newDevice(cfg)
				if err != nil {
					return nil, err
				}
				dg2 := gpualgo.Upload(d2, w.g)
				r, err := gpualgo.BFS(d2, dg2, src, gpualgo.Options{K: fullK, BlockSize: cfg.BlockSize})
				if err != nil {
					return nil, err
				}
				indep += r.Stats.Cycles
			}
			t.AddRow(w.name, report.I(int64(batch)),
				report.F(float64(ms.Stats.Cycles)/1e6, 3),
				report.F(float64(indep)/1e6, 3),
				report.F(float64(indep)/float64(ms.Stats.Cycles), 2)+"x")
		}
	}
	return []*report.Table{t}, nil
}
