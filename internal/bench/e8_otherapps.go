package bench

import (
	"fmt"

	"maxwarp/internal/gengraph"
	"maxwarp/internal/gpualgo"
	"maxwarp/internal/report"
)

// E8OtherApps reproduces the "other applications" table: the virtual
// warp-centric method applied beyond BFS — SSSP (Bellman-Ford), PageRank,
// connected components, and the neighbor-sum gather microkernel — reported
// as speedup of K=warp-width over the thread-per-vertex baseline on a skewed
// and a regular workload.
func E8OtherApps(cfg Config) ([]*report.Table, error) {
	cfg = cfg.WithDefaults()
	ws, err := buildWorkloads(cfg)
	if err != nil {
		return nil, err
	}
	// Two representative regimes keep the table affordable: the most skewed
	// and the most regular workload of the suite.
	picks := []workload{ws[0], ws[len(ws)-1]}
	fullK := cfg.Device.WarpWidth

	t := &report.Table{
		ID:      "E8",
		Title:   fmt.Sprintf("Other applications: speedup of warp-centric (K=%d) over baseline (K=1)", fullK),
		Columns: []string{"graph", "app", "baseline Mcycles", "warp-centric Mcycles", "speedup", "iterations"},
	}
	t.ChartSpec = &report.ChartSpec{GroupCol: 0, BarCol: 1, ValueCol: 4, Unit: "speedup x"}

	type appResult struct {
		cycles int64
		iters  int
	}
	runApp := func(w workload, app string, k int) (appResult, error) {
		d, err := newDevice(cfg)
		if err != nil {
			return appResult{}, err
		}
		opts := gpualgo.Options{K: k, BlockSize: cfg.BlockSize}
		switch app {
		case "bfs":
			dg := gpualgo.Upload(d, w.g)
			r, err := gpualgo.BFS(d, dg, w.src, opts)
			if err != nil {
				return appResult{}, err
			}
			return appResult{r.Stats.Cycles, r.Iterations}, nil
		case "sssp":
			weights := gengraph.EdgeWeights(w.g, 16, cfg.Seed)
			dg, err := gpualgo.UploadWeighted(d, w.g, weights)
			if err != nil {
				return appResult{}, err
			}
			r, err := gpualgo.SSSP(d, dg, w.src, opts)
			if err != nil {
				return appResult{}, err
			}
			return appResult{r.Stats.Cycles, r.Iterations}, nil
		case "pagerank":
			r, err := gpualgo.PageRank(d, w.g, gpualgo.PageRankOptions{Options: opts, Iterations: 5})
			if err != nil {
				return appResult{}, err
			}
			return appResult{r.Stats.Cycles, r.Iterations}, nil
		case "cc":
			sym, err := w.g.Symmetrize()
			if err != nil {
				return appResult{}, err
			}
			dg := gpualgo.Upload(d, sym)
			r, err := gpualgo.ConnectedComponents(d, dg, opts)
			if err != nil {
				return appResult{}, err
			}
			return appResult{r.Stats.Cycles, r.Iterations}, nil
		case "nbrsum":
			dg := gpualgo.Upload(d, w.g)
			values := make([]int32, w.g.NumVertices())
			for i := range values {
				values[i] = int32(i)
			}
			r, err := gpualgo.NeighborSum(d, dg, values, opts)
			if err != nil {
				return appResult{}, err
			}
			return appResult{r.Stats.Cycles, r.Iterations}, nil
		}
		return appResult{}, fmt.Errorf("bench: unknown app %q", app)
	}

	for _, w := range picks {
		for _, app := range []string{"bfs", "sssp", "pagerank", "cc", "nbrsum"} {
			base, err := runApp(w, app, 1)
			if err != nil {
				return nil, fmt.Errorf("%s/%s baseline: %w", w.name, app, err)
			}
			warp, err := runApp(w, app, fullK)
			if err != nil {
				return nil, fmt.Errorf("%s/%s warp-centric: %w", w.name, app, err)
			}
			t.AddRow(w.name, app,
				report.F(float64(base.cycles)/1e6, 2),
				report.F(float64(warp.cycles)/1e6, 2),
				report.F(float64(base.cycles)/float64(warp.cycles), 2)+"x",
				report.I(int64(warp.iters)))
		}
	}
	return []*report.Table{t}, nil
}
