package bench

import (
	"fmt"

	"maxwarp/internal/gpualgo"
	"maxwarp/internal/report"
	"maxwarp/internal/xrand"
)

// E11SpMV reproduces the scalar-vs-vector CSR SpMV comparison (Bell &
// Garland) that the paper generalizes into virtual warps: K=1 is scalar CSR,
// K=32 vector CSR, intermediate K the paper's interpolation. Expected shape:
// vector CSR wins on skewed matrices, scalar on very short uniform rows,
// with the optimum sliding with row-length statistics.
func E11SpMV(cfg Config) ([]*report.Table, error) {
	cfg = cfg.WithDefaults()
	ws, err := buildWorkloads(cfg)
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		ID:      "E11",
		Title:   "SpMV (y = A·x on each workload's adjacency structure): cycles by virtual warp width",
		Columns: []string{"matrix", "K", "Mcycles", "speedup vs K=1", "txns/mem-op", "SIMD util"},
		Notes:   []string{"K=1 = scalar CSR (thread/row); K=32 = vector CSR (warp/row)"},
	}
	t.ChartSpec = &report.ChartSpec{GroupCol: 0, BarCol: 1, ValueCol: 3, Unit: "speedup vs scalar x"}
	for _, w := range ws {
		r := xrand.New(cfg.Seed)
		vals := make([]float32, w.g.NumEdges())
		for i := range vals {
			vals[i] = float32(r.Float64())
		}
		x := make([]float32, w.g.NumVertices())
		for i := range x {
			x[i] = float32(r.Float64())
		}
		var base int64
		for _, k := range cfg.Ks {
			d, err := newDevice(cfg)
			if err != nil {
				return nil, err
			}
			dg := gpualgo.Upload(d, w.g)
			res, err := gpualgo.SpMV(d, dg, vals, x, gpualgo.Options{K: k, BlockSize: cfg.BlockSize})
			if err != nil {
				return nil, err
			}
			if k == 1 {
				base = res.Stats.Cycles
			}
			t.AddRow(w.name, report.I(int64(k)),
				report.F(float64(res.Stats.Cycles)/1e6, 3),
				report.F(float64(base)/float64(res.Stats.Cycles), 2)+"x",
				report.F(res.Stats.TxnsPerMemOp(), 2),
				report.F(res.Stats.SIMDUtilization(), 3))
		}
	}
	return []*report.Table{t}, nil
}

// E12QuadraticVsFrontier compares the paper's quadratic (scan-all-vertices)
// BFS formulation against queue-based frontier BFS under both mappings.
// Expected shape: the frontier version wins decisively on high-diameter
// graphs (the quadratic rescan dominates) and the gap narrows on
// small-diameter skewed graphs where most levels touch most vertices anyway;
// the warp-centric mapping helps both formulations.
func E12QuadraticVsFrontier(cfg Config) ([]*report.Table, error) {
	cfg = cfg.WithDefaults()
	ws, err := buildWorkloads(cfg)
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		ID:      "E12",
		Title:   "Quadratic vs frontier-queue BFS under both mappings",
		Columns: []string{"graph", "formulation", "K", "Mcycles", "levels", "atomics"},
	}
	fullK := cfg.Device.WarpWidth
	for _, w := range ws {
		for _, k := range []int{1, fullK} {
			d, err := newDevice(cfg)
			if err != nil {
				return nil, err
			}
			dg := gpualgo.Upload(d, w.g)
			quad, err := gpualgo.BFS(d, dg, w.src, gpualgo.Options{K: k, BlockSize: cfg.BlockSize})
			if err != nil {
				return nil, err
			}
			t.AddRow(w.name, "quadratic", report.I(int64(k)),
				report.F(float64(quad.Stats.Cycles)/1e6, 3),
				report.I(int64(quad.Iterations)), report.I(quad.Stats.AtomicOps))

			d2, err := newDevice(cfg)
			if err != nil {
				return nil, err
			}
			dg2 := gpualgo.Upload(d2, w.g)
			front, err := gpualgo.BFSFrontier(d2, dg2, w.src, gpualgo.Options{K: k, BlockSize: cfg.BlockSize})
			if err != nil {
				return nil, err
			}
			t.AddRow(w.name, "frontier", report.I(int64(k)),
				report.F(float64(front.Stats.Cycles)/1e6, 3),
				report.I(int64(front.Iterations)), report.I(front.Stats.AtomicOps))
		}
	}
	return []*report.Table{t}, nil
}

// A3CacheAblation re-runs the headline BFS contrast with the per-SM
// read-only cache enabled, checking the warp-centric advantage is not an
// artifact of the cache-less GT200-style memory system: caches help both
// mappings (the baseline more, since its scattered reads re-touch segments)
// but the ordering must survive.
func A3CacheAblation(cfg Config) ([]*report.Table, error) {
	cfg = cfg.WithDefaults()
	ws, err := buildWorkloads(cfg)
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		ID:      "A3",
		Title:   "Ablation: per-SM read-only cache, BFS baseline vs warp-centric",
		Columns: []string{"graph", "cache", "K=1 Mcycles", "K=32 Mcycles", "speedup", "K=1 hit%", "K=32 hit%"},
	}
	fullK := cfg.Device.WarpWidth
	for _, w := range ws {
		for _, lines := range []int{0, 512} {
			dcfg := cfg
			dcfg.Device.CacheLines = lines
			run := func(k int) (*gpualgo.BFSResult, error) {
				d, err := newDevice(dcfg)
				if err != nil {
					return nil, err
				}
				dg := gpualgo.Upload(d, w.g)
				return gpualgo.BFS(d, dg, w.src, gpualgo.Options{K: k, BlockSize: cfg.BlockSize})
			}
			base, err := run(1)
			if err != nil {
				return nil, err
			}
			warp, err := run(fullK)
			if err != nil {
				return nil, err
			}
			hitPct := func(r *gpualgo.BFSResult) string {
				total := r.Stats.CacheHits + r.Stats.CacheMisses
				if total == 0 {
					return "-"
				}
				return report.F(100*float64(r.Stats.CacheHits)/float64(total), 1)
			}
			label := "off"
			if lines > 0 {
				label = fmt.Sprintf("%d lines", lines)
			}
			t.AddRow(w.name, label,
				report.F(float64(base.Stats.Cycles)/1e6, 2),
				report.F(float64(warp.Stats.Cycles)/1e6, 2),
				report.F(float64(base.Stats.Cycles)/float64(warp.Stats.Cycles), 2)+"x",
				hitPct(base), hitPct(warp))
		}
	}
	return []*report.Table{t}, nil
}
