package bench

import (
	"fmt"

	"maxwarp/internal/gpualgo"
	"maxwarp/internal/graph"
	"maxwarp/internal/report"
)

// E13IrregularKernels extends E8 with the harder irregular kernels built on
// the full vwarp phase vocabulary (GroupLoop + SIMD + per-lane binary
// search): triangle counting, k-core peeling, and deterministic-Luby MIS.
// Expected shape: the warp-centric mapping wins on the skewed workload for
// all three; triangle counting gains the most (its inner intersection is the
// most imbalance-prone loop in the suite).
func E13IrregularKernels(cfg Config) ([]*report.Table, error) {
	cfg = cfg.WithDefaults()
	ws, err := buildWorkloads(cfg)
	if err != nil {
		return nil, err
	}
	picks := []workload{ws[0], ws[len(ws)-1]}
	fullK := cfg.Device.WarpWidth
	t := &report.Table{
		ID:      "E13",
		Title:   fmt.Sprintf("Additional irregular kernels: K=%d vs baseline", fullK),
		Columns: []string{"graph", "kernel", "baseline Mcycles", "warp-centric Mcycles", "speedup", "result"},
		Notes:   []string{"result: triangles = count, kcore = |2-core|, mis = set size, coloring = palette, bc = max score (2 sources)"},
	}
	t.ChartSpec = &report.ChartSpec{GroupCol: 0, BarCol: 1, ValueCol: 4, Unit: "speedup x"}
	type outcome struct {
		cycles int64
		result string
	}
	runKernel := func(sym *graph.CSR, kernel string, k int) (outcome, error) {
		d, err := newDevice(cfg)
		if err != nil {
			return outcome{}, err
		}
		opts := gpualgo.Options{K: k, BlockSize: cfg.BlockSize}
		switch kernel {
		case "triangles":
			r, err := gpualgo.TriangleCount(d, sym, opts)
			if err != nil {
				return outcome{}, err
			}
			return outcome{r.Stats.Cycles, report.I(r.Total)}, nil
		case "kcore":
			dg := gpualgo.Upload(d, sym)
			r, err := gpualgo.KCore(d, dg, 2, opts)
			if err != nil {
				return outcome{}, err
			}
			return outcome{r.Stats.Cycles, report.I(int64(r.Remaining))}, nil
		case "mis":
			dg := gpualgo.Upload(d, sym)
			r, err := gpualgo.MIS(d, dg, cfg.Seed, opts)
			if err != nil {
				return outcome{}, err
			}
			return outcome{r.Stats.Cycles, report.I(int64(r.Size))}, nil
		case "coloring":
			dg := gpualgo.Upload(d, sym)
			r, err := gpualgo.GraphColoring(d, dg, cfg.Seed, opts)
			if err != nil {
				return outcome{}, err
			}
			return outcome{r.Stats.Cycles, report.I(int64(r.NumColors))}, nil
		case "bc":
			srcs := []graph.VertexID{0, graph.VertexID(sym.NumVertices() / 2)}
			r, err := gpualgo.BetweennessCentrality(d, sym, srcs, opts)
			if err != nil {
				return outcome{}, err
			}
			var top float64
			for _, s := range r.Scores {
				if float64(s) > top {
					top = float64(s)
				}
			}
			return outcome{r.Stats.Cycles, report.F(top, 0)}, nil
		}
		return outcome{}, fmt.Errorf("bench: unknown kernel %q", kernel)
	}
	for _, w := range picks {
		sym, err := w.g.Symmetrize()
		if err != nil {
			return nil, err
		}
		for _, kernel := range []string{"triangles", "kcore", "mis", "coloring", "bc"} {
			base, err := runKernel(sym, kernel, 1)
			if err != nil {
				return nil, fmt.Errorf("%s/%s baseline: %w", w.name, kernel, err)
			}
			warp, err := runKernel(sym, kernel, fullK)
			if err != nil {
				return nil, fmt.Errorf("%s/%s warp-centric: %w", w.name, kernel, err)
			}
			// BC's float reductions may differ in the last ulps between
			// mappings; integer results must agree exactly.
			if kernel != "bc" && kernel != "coloring" && base.result != warp.result {
				return nil, fmt.Errorf("bench: %s/%s results diverge between mappings (%s vs %s)",
					w.name, kernel, base.result, warp.result)
			}
			t.AddRow(w.name, kernel,
				report.F(float64(base.cycles)/1e6, 3),
				report.F(float64(warp.cycles)/1e6, 3),
				report.F(float64(base.cycles)/float64(warp.cycles), 2)+"x",
				warp.result)
		}
	}
	return []*report.Table{t}, nil
}
