package bench

import (
	"fmt"

	"maxwarp/internal/gengraph"
	"maxwarp/internal/gpualgo"
	"maxwarp/internal/report"
)

// E16DeltaStepping compares the two device SSSP formulations: Bellman-Ford
// (scan all vertices every round — the paper-era formulation) against
// near-far delta-stepping worklists, sweeping the bucket width Delta.
// Expected shape: delta-stepping wins on high-diameter graphs where
// Bellman-Ford's full scans dwarf the active set; tiny Delta pays too many
// threshold phases, huge Delta degenerates toward Bellman-Ford behaviour.
func E16DeltaStepping(cfg Config) ([]*report.Table, error) {
	cfg = cfg.WithDefaults()
	ws, err := buildWorkloads(cfg)
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		ID:      "E16",
		Title:   "SSSP formulations: Bellman-Ford vs delta-stepping (K=32, weights 1..16)",
		Columns: []string{"graph", "algorithm", "Mcycles", "speedup vs BF", "phases", "Minstructions"},
	}
	t.ChartSpec = &report.ChartSpec{GroupCol: 0, BarCol: 1, ValueCol: 3, Unit: "speedup vs Bellman-Ford x"}
	fullK := cfg.Device.WarpWidth
	for _, w := range ws {
		weights := gengraph.EdgeWeights(w.g, 16, cfg.Seed)
		d, err := newDevice(cfg)
		if err != nil {
			return nil, err
		}
		dg, err := gpualgo.UploadWeighted(d, w.g, weights)
		if err != nil {
			return nil, err
		}
		bf, err := gpualgo.SSSP(d, dg, w.src, gpualgo.Options{K: fullK, BlockSize: cfg.BlockSize})
		if err != nil {
			return nil, fmt.Errorf("%s bellman-ford: %w", w.name, err)
		}
		t.AddRow(w.name, "bellman-ford",
			report.F(float64(bf.Stats.Cycles)/1e6, 3), "1.00x",
			report.I(int64(bf.Iterations)),
			report.F(float64(bf.Stats.Instructions)/1e6, 2))
		for _, delta := range []int32{0, 2, 32} { // 0 = auto (≈ mean weight)
			d2, err := newDevice(cfg)
			if err != nil {
				return nil, err
			}
			dg2, err := gpualgo.UploadWeighted(d2, w.g, weights)
			if err != nil {
				return nil, err
			}
			ds, err := gpualgo.DeltaStepping(d2, dg2, w.src, gpualgo.DeltaSteppingOptions{
				Options: gpualgo.Options{K: fullK, BlockSize: cfg.BlockSize},
				Delta:   delta,
			})
			if err != nil {
				return nil, fmt.Errorf("%s delta=%d: %w", w.name, delta, err)
			}
			label := fmt.Sprintf("delta-step/%d", delta)
			if delta == 0 {
				label = "delta-step/auto"
			}
			t.AddRow(w.name, label,
				report.F(float64(ds.Stats.Cycles)/1e6, 3),
				report.F(float64(bf.Stats.Cycles)/float64(ds.Stats.Cycles), 2)+"x",
				report.I(int64(ds.Iterations)),
				report.F(float64(ds.Stats.Instructions)/1e6, 2))
		}
	}
	return []*report.Table{t}, nil
}
