package bench

import (
	"fmt"

	"maxwarp/internal/gpualgo"
	"maxwarp/internal/report"
)

// E4Point is one simulated data point of the E4 sweep: BFS cycles for one
// (workload, K) pair. The simulator is deterministic, so for a fixed Config
// the points are exactly reproducible — which is what the benchmark
// regression gate (TestE4CyclesRegression) compares against its committed
// baseline.
type E4Point struct {
	Graph  string `json:"graph"`
	K      int    `json:"k"`
	Cycles int64  `json:"cycles"`
}

// E4SweepPoints runs the E4 BFS sweep and returns the raw cycle counts,
// ordered by (workload, K) as configured.
func E4SweepPoints(cfg Config) ([]E4Point, error) {
	cfg = cfg.WithDefaults()
	ws, err := buildWorkloads(cfg)
	if err != nil {
		return nil, err
	}
	var points []E4Point
	for _, w := range ws {
		for _, k := range cfg.Ks {
			d, err := newDevice(cfg)
			if err != nil {
				return nil, err
			}
			dg := gpualgo.Upload(d, w.g)
			res, err := gpualgo.BFS(d, dg, w.src, gpualgo.Options{K: k, BlockSize: cfg.BlockSize})
			if err != nil {
				return nil, err
			}
			points = append(points, E4Point{Graph: w.name, K: k, Cycles: res.Stats.Cycles})
		}
	}
	return points, nil
}

// E4WarpSizeSweep reproduces the headline figure: virtual warp-centric BFS
// speedup over the thread-per-vertex baseline as a function of the virtual
// warp width K, across workloads. The expected shape: large speedups and
// best-K = warp width on skewed graphs, shrinking gains (and a smaller best
// K, or none) as workloads become regular.
func E4WarpSizeSweep(cfg Config) ([]*report.Table, error) {
	cfg = cfg.WithDefaults()
	points, err := E4SweepPoints(cfg)
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		ID:    "E4",
		Title: "BFS speedup over thread-per-vertex baseline vs virtual warp width K",
		Notes: []string{"speedup = baseline cycles / warp-centric cycles on the same graph"},
	}
	t.Columns = []string{"graph", "baseline Mcycles"}
	for _, k := range cfg.Ks {
		if k == 1 {
			continue
		}
		t.Columns = append(t.Columns, fmt.Sprintf("K=%d", k))
	}
	t.Columns = append(t.Columns, "best K", "best speedup")
	t.ChartSpec = &report.ChartSpec{GroupCol: 0, BarCol: len(t.Columns) - 2, ValueCol: len(t.Columns) - 1, Unit: "best speedup x"}
	i := 0
	for i < len(points) {
		w := points[i].Graph
		var baseline int64
		bestK, bestSpeed := 1, 1.0
		cells := []string{w}
		for ; i < len(points) && points[i].Graph == w; i++ {
			p := points[i]
			if p.K == 1 {
				baseline = p.Cycles
				cells = append(cells, report.F(float64(baseline)/1e6, 2))
				continue
			}
			speed := float64(baseline) / float64(p.Cycles)
			if speed > bestSpeed {
				bestK, bestSpeed = p.K, speed
			}
			cells = append(cells, report.F(speed, 2)+"x")
		}
		cells = append(cells, report.I(int64(bestK)), report.F(bestSpeed, 2)+"x")
		t.AddRow(cells...)
	}
	return []*report.Table{t}, nil
}

// E5UtilImbalance reproduces the trade-off figure behind E4: as K grows,
// per-warp workload imbalance (busy-cycle CV) falls while useful ALU
// utilization falls on low-degree graphs (replicated SISD execution and idle
// SIMD lanes on short adjacency lists). The best K in E4 sits where the two
// curves balance.
//
// The measurement uses the neighbor-sum kernel rather than BFS: in BFS most
// vertices fail the frontier check each level, and that sparsity dilutes the
// global utilization counters, masking the mapping effect the figure is
// about. Neighbor-sum keeps every vertex active, isolating the K trade-off.
func E5UtilImbalance(cfg Config) ([]*report.Table, error) {
	cfg = cfg.WithDefaults()
	ws, err := buildWorkloads(cfg)
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		ID:      "E5",
		Title:   "ALU utilization vs workload imbalance as K grows (neighbor-sum kernel)",
		Columns: []string{"graph", "K", "SIMD util", "useful util", "imbalance CV", "max/mean warp busy", "Mcycles"},
		Notes: []string{
			"SIMD util counts active lanes; useful util discounts replicated SISD lanes.",
			"imbalance CV is the coefficient of variation of per-warp busy cycles.",
			"expected: CV falls with K everywhere; useful util falls with K on low-degree graphs.",
		},
	}
	t.ChartSpec = &report.ChartSpec{GroupCol: 0, BarCol: 1, ValueCol: 3, Unit: "useful ALU utilization"}
	for _, w := range ws {
		values := make([]int32, w.g.NumVertices())
		for _, k := range cfg.Ks {
			d, err := newDevice(cfg)
			if err != nil {
				return nil, err
			}
			dg := gpualgo.Upload(d, w.g)
			res, err := gpualgo.NeighborSum(d, dg, values, gpualgo.Options{K: k, BlockSize: cfg.BlockSize})
			if err != nil {
				return nil, err
			}
			t.AddRow(w.name, report.I(int64(k)),
				report.F(res.Stats.SIMDUtilization(), 3),
				report.F(res.Stats.UsefulUtilization(), 3),
				report.F(res.Stats.WarpImbalanceCV(), 3),
				report.F(res.Stats.WarpBusyMaxOverMean(), 2),
				report.F(float64(res.Stats.Cycles)/1e6, 2))
		}
	}
	return []*report.Table{t}, nil
}
