package bench

import (
	"fmt"
	"sort"
)

// All returns every experiment in index order.
func All() []Experiment {
	return []Experiment{
		{ID: "E1", Title: "Graph instances and degree statistics", Run: E1GraphTable},
		{ID: "E2", Title: "Degree distribution histogram", Run: E2DegreeHistogram},
		{ID: "E3", Title: "Baseline GPU BFS vs CPU", Run: E3BaselineVsCPU},
		{ID: "E4", Title: "Virtual warp width sweep (headline speedups)", Run: E4WarpSizeSweep},
		{ID: "E5", Title: "ALU utilization vs workload imbalance trade-off", Run: E5UtilImbalance},
		{ID: "E6", Title: "Deferring outliers", Run: E6DeferOutliers},
		{ID: "E7", Title: "Dynamic workload distribution", Run: E7DynamicWorkload},
		{ID: "E8", Title: "Other applications (SSSP, PageRank, CC, neighbor-sum)", Run: E8OtherApps},
		{ID: "E9", Title: "Throughput scaling with graph size", Run: E9Scaling},
		{ID: "E10", Title: "Memory coalescing analysis", Run: E10Coalescing},
		{ID: "E11", Title: "SpMV: scalar vs vector CSR via virtual warps", Run: E11SpMV},
		{ID: "E12", Title: "Quadratic vs frontier-queue BFS", Run: E12QuadraticVsFrontier},
		{ID: "E13", Title: "Additional irregular kernels (triangles, k-core, MIS)", Run: E13IrregularKernels},
		{ID: "E14", Title: "Direction-optimizing BFS (push/pull/hybrid)", Run: E14DirectionOptimizing},
		{ID: "E15", Title: "Degree-sorted relabeling vs warp-centric mapping", Run: E15DegreeSortRelabel},
		{ID: "E16", Title: "SSSP formulations: Bellman-Ford vs delta-stepping", Run: E16DeltaStepping},
		{ID: "E17", Title: "Multi-source BFS: bit-parallel batching", Run: E17MSBFS},
		{ID: "E18", Title: "SCC decomposition (Forward-Backward-Trim)", Run: E18SCC},
		{ID: "A1", Title: "Ablation: resident warps per SM", Run: A1ResidencySweep},
		{ID: "A2", Title: "Ablation: coalescing segment size", Run: A2SegmentSweep},
		{ID: "A3", Title: "Ablation: per-SM read-only cache", Run: A3CacheAblation},
		{ID: "A4", Title: "Ablation: warp scheduler policy (GTO vs LRR)", Run: A4SchedulerPolicy},
	}
}

// ByID looks up an experiment by its index id (case-sensitive).
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	var ids []string
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q (have %v)", id, ids)
}
