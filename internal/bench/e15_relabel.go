package bench

import (
	"maxwarp/internal/gpualgo"
	"maxwarp/internal/graph"
	"maxwarp/internal/report"
)

// E15DegreeSortRelabel measures the preprocessing alternative one might try
// instead of the paper's method: relabel vertices in descending-degree order
// so a thread-per-vertex warp gets 32 similar-degree vertices and its SIMD
// lanes stay in step. The measured result is a negative one that sharpens
// the paper's argument: relabeling does raise K=1 SIMD utilization on skewed
// graphs (lanes finish together), but end-to-end cycles barely move, because
// the baseline's real bottleneck is its *scattered memory traffic* —
// which only the warp-centric mapping's coalesced adjacency reads fix.
// Imbalance merely moves from intra-warp to inter-warp, where warp
// oversubscription absorbs it.
func E15DegreeSortRelabel(cfg Config) ([]*report.Table, error) {
	cfg = cfg.WithDefaults()
	ws, err := buildWorkloads(cfg)
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		ID:      "E15",
		Title:   "Degree-sorted relabeling vs the warp-centric mapping (neighbor-sum kernel)",
		Columns: []string{"graph", "labeling", "K", "Mcycles", "speedup vs original", "SIMD util", "txns/op"},
	}
	for _, w := range ws {
		sorted, _, err := graph.SortByDegree(w.g)
		if err != nil {
			return nil, err
		}
		for _, k := range []int{1, cfg.Device.WarpWidth} {
			var origCycles int64
			for _, variant := range []struct {
				label string
				g     *graph.CSR
			}{{"original", w.g}, {"degree-sorted", sorted}} {
				d, err := newDevice(cfg)
				if err != nil {
					return nil, err
				}
				dg := gpualgo.Upload(d, variant.g)
				values := make([]int32, variant.g.NumVertices())
				res, err := gpualgo.NeighborSum(d, dg, values, gpualgo.Options{K: k, BlockSize: cfg.BlockSize})
				if err != nil {
					return nil, err
				}
				if variant.label == "original" {
					origCycles = res.Stats.Cycles
				}
				t.AddRow(w.name, variant.label, report.I(int64(k)),
					report.F(float64(res.Stats.Cycles)/1e6, 3),
					report.F(float64(origCycles)/float64(res.Stats.Cycles), 2)+"x",
					report.F(res.Stats.SIMDUtilization(), 3),
					report.F(res.Stats.TxnsPerMemOp(), 2))
			}
		}
	}
	return []*report.Table{t}, nil
}
