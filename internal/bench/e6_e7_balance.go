package bench

import (
	"fmt"

	"maxwarp/internal/gpualgo"
	"maxwarp/internal/report"
)

// E6DeferOutliers reproduces the deferring-outliers figure: BFS cycles as
// the deferral threshold sweeps from off to aggressive, on the skewed
// workloads where outliers exist. Expected shape: deferral trims the
// straggler tail on hub-heavy graphs (modest cycle reduction, imbalance CV
// drop) and is a no-op on regular graphs.
func E6DeferOutliers(cfg Config) ([]*report.Table, error) {
	cfg = cfg.WithDefaults()
	ws, err := buildWorkloads(cfg)
	if err != nil {
		return nil, err
	}
	thresholds := []int32{0, 16, 32, 64, 128}
	t := &report.Table{
		ID:      "E6",
		Title:   "Deferring outliers: BFS cost vs deferral threshold (K=4 main pass, full-warp deferred pass)",
		Columns: []string{"graph", "threshold", "Mcycles", "speedup vs off", "deferred vertices", "imbalance CV"},
		Notes:   []string{"threshold 0 disables deferral (the paper's base warp-centric kernel)"},
	}
	const mainK = 4
	for _, w := range ws {
		var off int64
		for _, th := range thresholds {
			d, err := newDevice(cfg)
			if err != nil {
				return nil, err
			}
			dg := gpualgo.Upload(d, w.g)
			res, err := gpualgo.BFS(d, dg, w.src, gpualgo.Options{K: mainK, DeferThreshold: th, BlockSize: cfg.BlockSize})
			if err != nil {
				return nil, err
			}
			label := report.I(int64(th))
			if th == 0 {
				off = res.Stats.Cycles
				label = "off"
			}
			t.AddRow(w.name, label,
				report.F(float64(res.Stats.Cycles)/1e6, 2),
				report.F(float64(off)/float64(res.Stats.Cycles), 2)+"x",
				report.I(int64(res.Deferred)),
				report.F(res.Stats.WarpImbalanceCV(), 3))
		}
	}
	return []*report.Table{t}, nil
}

// E7DynamicWorkload reproduces the dynamic-workload-distribution figure:
// static scheduling (both the stride variant and the paper-era blocked
// variant) vs warps claiming chunks from a global counter, across chunk
// sizes. Expected shape: dynamic fetch beats the *blocked* static baseline
// (the comparison the paper made) where per-task cost varies; against the
// stronger stride baseline it only reduces the imbalance CV, paying fetch
// overhead (see EXPERIMENTS.md deviation 1).
func E7DynamicWorkload(cfg Config) ([]*report.Table, error) {
	cfg = cfg.WithDefaults()
	ws, err := buildWorkloads(cfg)
	if err != nil {
		return nil, err
	}
	chunks := []int32{1, 4, 16, 64}
	// A small grid makes each virtual warp process several tasks — the
	// regime where the schedule choice matters at all (with one task per
	// virtual warp, all schedules coincide).
	const gridCap = 8
	t := &report.Table{
		ID:      "E7",
		Title:   "Dynamic workload distribution: BFS cost vs fetch chunk size (K=4)",
		Columns: []string{"graph", "schedule", "Mcycles", "speedup vs static", "imbalance CV", "atomic serializations"},
	}
	const mainK = 4
	for _, w := range ws {
		d, err := newDevice(cfg)
		if err != nil {
			return nil, err
		}
		dg := gpualgo.Upload(d, w.g)
		static, err := gpualgo.BFS(d, dg, w.src, gpualgo.Options{K: mainK, BlockSize: cfg.BlockSize, GridBlocksCap: gridCap})
		if err != nil {
			return nil, err
		}
		t.AddRow(w.name, "static-stride",
			report.F(float64(static.Stats.Cycles)/1e6, 2), "1.00x",
			report.F(static.Stats.WarpImbalanceCV(), 3),
			report.I(static.Stats.AtomicSerial))
		dBlocked, err := newDevice(cfg)
		if err != nil {
			return nil, err
		}
		dgBlocked := gpualgo.Upload(dBlocked, w.g)
		blocked, err := gpualgo.BFS(dBlocked, dgBlocked, w.src, gpualgo.Options{
			K: mainK, Blocked: true, BlockSize: cfg.BlockSize, GridBlocksCap: gridCap,
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(w.name, "static-blocked",
			report.F(float64(blocked.Stats.Cycles)/1e6, 2),
			report.F(float64(static.Stats.Cycles)/float64(blocked.Stats.Cycles), 2)+"x",
			report.F(blocked.Stats.WarpImbalanceCV(), 3),
			report.I(blocked.Stats.AtomicSerial))
		for _, chunk := range chunks {
			d, err := newDevice(cfg)
			if err != nil {
				return nil, err
			}
			dg := gpualgo.Upload(d, w.g)
			res, err := gpualgo.BFS(d, dg, w.src, gpualgo.Options{
				K: mainK, Dynamic: true, Chunk: chunk, BlockSize: cfg.BlockSize, GridBlocksCap: gridCap,
			})
			if err != nil {
				return nil, err
			}
			t.AddRow(w.name, fmt.Sprintf("dynamic/%d", chunk),
				report.F(float64(res.Stats.Cycles)/1e6, 2),
				report.F(float64(static.Stats.Cycles)/float64(res.Stats.Cycles), 2)+"x",
				report.F(res.Stats.WarpImbalanceCV(), 3),
				report.I(res.Stats.AtomicSerial))
		}
	}
	return []*report.Table{t}, nil
}
