package bench

import (
	"maxwarp/internal/gengraph"
	"maxwarp/internal/gpualgo"
	"maxwarp/internal/graph"
	"maxwarp/internal/report"
)

// A1ResidencySweep ablates warp oversubscription: the same warp-centric BFS
// with the SM's resident-warp limit swept from 1 to the default. This
// isolates the latency-hiding mechanism the simulator models: with few
// resident warps the SM stalls on every DRAM access.
func A1ResidencySweep(cfg Config) ([]*report.Table, error) {
	cfg = cfg.WithDefaults()
	g, err := gengraph.RMAT(cfg.Scale, 8, gengraph.DefaultRMAT, cfg.Seed)
	if err != nil {
		return nil, err
	}
	src := graph.LargestOutComponentSeed(g)
	t := &report.Table{
		ID:      "A1",
		Title:   "Ablation: resident warps per SM (latency hiding), warp-centric BFS on RMAT",
		Columns: []string{"warps/SM", "Mcycles", "stall Mcycles", "slowdown vs max"},
	}
	sweeps := []int{1, 2, 4, 8, 16, 32}
	var best int64 = -1
	type row struct {
		warps         int
		cycles, stall int64
	}
	var rows []row
	for _, warps := range sweeps {
		if warps > cfg.Device.MaxWarpsPerSM {
			continue
		}
		dcfg := cfg
		dcfg.Device.MaxWarpsPerSM = warps
		if dcfg.Device.MaxBlocksPerSM > warps {
			dcfg.Device.MaxBlocksPerSM = warps
		}
		d, err := newDevice(dcfg)
		if err != nil {
			return nil, err
		}
		dg := gpualgo.Upload(d, g)
		res, err := gpualgo.BFS(d, dg, src, gpualgo.Options{K: cfg.Device.WarpWidth, BlockSize: dcfg.Device.WarpWidth})
		if err != nil {
			return nil, err
		}
		rows = append(rows, row{warps, res.Stats.Cycles, res.Stats.StallCycles})
		if best < 0 || res.Stats.Cycles < best {
			best = res.Stats.Cycles
		}
	}
	for _, r := range rows {
		t.AddRow(report.I(int64(r.warps)),
			report.F(float64(r.cycles)/1e6, 2),
			report.F(float64(r.stall)/1e6, 2),
			report.F(float64(r.cycles)/float64(best), 2)+"x")
	}
	return []*report.Table{t}, nil
}

// A2SegmentSweep ablates the coalescing granularity: the E10 contrast
// (K=1 vs K=32 transactions per op) re-measured at several DRAM segment
// sizes. The warp-centric advantage must persist across granularities —
// i.e. the headline result is not an artifact of the 128-byte default.
func A2SegmentSweep(cfg Config) ([]*report.Table, error) {
	cfg = cfg.WithDefaults()
	g, err := gengraph.RMAT(cfg.Scale, 8, gengraph.DefaultRMAT, cfg.Seed)
	if err != nil {
		return nil, err
	}
	values := make([]int32, g.NumVertices())
	t := &report.Table{
		ID:      "A2",
		Title:   "Ablation: coalescing segment size, neighbor-sum on RMAT",
		Columns: []string{"segment B", "K=1 txns/op", "K=32 txns/op", "K=1 Mcycles", "K=32 Mcycles", "speedup"},
	}
	for _, seg := range []int{32, 64, 128, 256} {
		dcfg := cfg
		dcfg.Device.SegmentBytes = seg
		run := func(k int) (*gpualgo.NeighborSumResult, error) {
			d, err := newDevice(dcfg)
			if err != nil {
				return nil, err
			}
			dg := gpualgo.Upload(d, g)
			return gpualgo.NeighborSum(d, dg, values, gpualgo.Options{K: k, BlockSize: cfg.BlockSize})
		}
		base, err := run(1)
		if err != nil {
			return nil, err
		}
		warp, err := run(cfg.Device.WarpWidth)
		if err != nil {
			return nil, err
		}
		t.AddRow(report.I(int64(seg)),
			report.F(base.Stats.TxnsPerMemOp(), 2),
			report.F(warp.Stats.TxnsPerMemOp(), 2),
			report.F(float64(base.Stats.Cycles)/1e6, 2),
			report.F(float64(warp.Stats.Cycles)/1e6, 2),
			report.F(float64(base.Stats.Cycles)/float64(warp.Stats.Cycles), 2)+"x")
	}
	return []*report.Table{t}, nil
}
