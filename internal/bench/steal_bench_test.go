package bench

import (
	"testing"

	"maxwarp/internal/gengraph"
	"maxwarp/internal/gpualgo"
	"maxwarp/internal/graph"
	"maxwarp/internal/simt"
)

// BenchmarkRMATBFSBlockSchedule is the headline wall-clock benchmark for the
// host-level block distributor: thread-per-vertex BFS (K=1, the maximally
// imbalanced mapping) on a scale-15 RMAT graph, at ParallelSMs=8, under each
// block schedule. RMAT's power-law degrees make early blocks systematically
// heavier, so the eager FIFO distributor strands host goroutines while the
// depth-limited stealing distributor keeps them fed. Both schedules are
// deterministic per the stealing contract (internal/simt/steal_test.go);
// the recorded fifo/steal ratio lives in BENCH_PR10.json.
func BenchmarkRMATBFSBlockSchedule(b *testing.B) {
	g, err := gengraph.RMAT(15, 16, gengraph.RMATParams{A: 0.57, B: 0.19, C: 0.19, D: 0.05}, 7)
	if err != nil {
		b.Fatal(err)
	}
	src := graph.LargestOutComponentSeed(g)
	for _, sched := range []string{"fifo", "steal"} {
		b.Run(sched, func(b *testing.B) {
			cfg := simt.DefaultConfig()
			cfg.ParallelSMs = 8
			cfg.BlockSchedule = sched
			d := simt.MustNewDevice(cfg)
			dg := gpualgo.Upload(d, g)
			opts := gpualgo.Options{K: 1, BlockSize: 128}
			if _, err := gpualgo.BFS(d, dg, src, opts); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := gpualgo.BFS(d, dg, src, opts)
				if err != nil {
					b.Fatal(err)
				}
				if res.Stats.SequentialFallback != "" {
					b.Fatalf("fell back to sequential: %s", res.Stats.SequentialFallback)
				}
			}
		})
	}
}
