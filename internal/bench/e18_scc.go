package bench

import (
	"fmt"

	"maxwarp/internal/gpualgo"
	"maxwarp/internal/report"
)

// E18SCC measures Forward-Backward-Trim strongly-connected-component
// decomposition (the group's SC'13 direction) under both mappings, and how
// much of each workload the trim phases resolve. Expected shape: skewed
// graphs are dominated by trivial SCCs that trim removes in a few cheap
// passes, with the warp-centric mapping accelerating the region scans.
func E18SCC(cfg Config) ([]*report.Table, error) {
	cfg = cfg.WithDefaults()
	ws, err := buildWorkloads(cfg)
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		ID:      "E18",
		Title:   "SCC decomposition (Forward-Backward-Trim): baseline vs warp-centric",
		Columns: []string{"graph", "components", "trimmed %", "K=1 Mcycles", "K=32 Mcycles", "speedup"},
	}
	t.ChartSpec = &report.ChartSpec{GroupCol: 0, BarCol: 1, ValueCol: 5, Unit: "speedup x"}
	fullK := cfg.Device.WarpWidth
	for _, w := range ws {
		run := func(k int) (*gpualgo.SCCResult, error) {
			d, err := newDevice(cfg)
			if err != nil {
				return nil, err
			}
			return gpualgo.SCC(d, w.g, gpualgo.Options{K: k, BlockSize: cfg.BlockSize})
		}
		base, err := run(1)
		if err != nil {
			return nil, fmt.Errorf("%s baseline: %w", w.name, err)
		}
		warp, err := run(fullK)
		if err != nil {
			return nil, fmt.Errorf("%s warp-centric: %w", w.name, err)
		}
		if base.Components != warp.Components {
			return nil, fmt.Errorf("bench: %s SCC counts diverge between mappings", w.name)
		}
		t.AddRow(w.name,
			report.I(int64(warp.Components)),
			report.F(100*float64(warp.Trimmed)/float64(w.g.NumVertices()), 1),
			report.F(float64(base.Stats.Cycles)/1e6, 3),
			report.F(float64(warp.Stats.Cycles)/1e6, 3),
			report.F(float64(base.Stats.Cycles)/float64(warp.Stats.Cycles), 2)+"x")
	}
	return []*report.Table{t}, nil
}
