package bench

import (
	"encoding/json"
	"flag"
	"os"
	"testing"

	"maxwarp/internal/gengraph"
	"maxwarp/internal/gpualgo"
	"maxwarp/internal/graph"
	"maxwarp/internal/simt"
)

var updateBenchPR10 = flag.Bool("update-bench-pr10", false,
	"rewrite ../../BENCH_PR10.json gate numbers from the current build instead of comparing")

// benchPR10Path is the active gate baseline. BENCH_PR7.json stays committed
// as the PR 7 historical record but is no longer enforced.
const benchPR10Path = "../../BENCH_PR10.json"

// benchPR10 mirrors the committed BENCH_PR10.json. The headline section
// records the full-size wall-clock measurements for the record; only the
// gate section is enforced in CI (allocations are near-deterministic where
// wall-clock on shared runners is not).
type benchPR10 struct {
	Note     string                `json:"note"`
	Headline map[string]benchPoint `json:"headline"`
	Gate     map[string]gatePoint  `json:"gate"`
}

type benchPoint struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	Metric      string  `json:"metric,omitempty"`
}

type gatePoint struct {
	AllocsPerOp int64 `json:"allocs_per_op"`
}

// allocGateKernel is the shared hot-loop probe body: a fully-uniform
// vectorized add, the cheapest instruction the interpret loop executes.
func allocGateKernel(w *simt.WarpCtx) {
	v := w.VecI32()
	for i := 0; i < 256; i++ {
		w.AddConstI32(v, 1)
	}
}

// gateApplyUniform is the sequential hot-loop probe: a persistent device
// running a fully-uniform kernel. Steady-state allocations are launch
// scaffolding only; a regression here means the interpret loop started
// allocating again.
func gateApplyUniform() (int64, error) {
	cfg := simt.DefaultConfig()
	cfg.NumSMs = 4
	return gateApply(cfg)
}

// gateApplyParallel is the same probe under ParallelSMs>1: it additionally
// covers the per-SM goroutine machinery (token handoff, gate horizons, the
// lazily-armed loopResume channels) so parallel-mode-only allocation
// regressions cannot hide behind the sequential gate.
func gateApplyParallel() (int64, error) {
	cfg := simt.DefaultConfig()
	cfg.NumSMs = 4
	cfg.ParallelSMs = 4
	return gateApply(cfg)
}

func gateApply(cfg simt.Config) (int64, error) {
	d := simt.MustNewDevice(cfg)
	lc := simt.LaunchConfig{Blocks: 16, ThreadsPerBlock: 32}
	if _, err := d.Launch(lc, allocGateKernel); err != nil {
		return 0, err
	}
	var launchErr error
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := d.Launch(lc, allocGateKernel); err != nil {
				launchErr = err
				b.FailNow()
			}
		}
	})
	return res.AllocsPerOp(), launchErr
}

// gateBFSSmall is the end-to-end probe: a fresh device plus one BFS on a
// small skewed graph per op, covering upload, launch scaffolding, kernel
// scratch, and host-side frontier management.
func gateBFSSmall() (int64, error) {
	g, err := gengraph.ChungLu(1<<11, 16, 2.2, 42)
	if err != nil {
		return 0, err
	}
	src := graph.LargestOutComponentSeed(g)
	var bfsErr error
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			d := simt.MustNewDevice(simt.DefaultConfig())
			if _, err := gpualgo.BFS(d, gpualgo.Upload(d, g), src, gpualgo.Options{K: 32}); err != nil {
				bfsErr = err
				b.FailNow()
			}
		}
	})
	return res.AllocsPerOp(), bfsErr
}

// TestHotPathAllocGate is the allocation-regression gate: allocs/op of the
// three hot-path probes must stay within 25% (plus a small absolute slack
// for map-growth jitter) of the committed BENCH_PR10.json numbers.
// Regenerate after an intentional change with:
//
//	go test ./internal/bench -run TestHotPathAllocGate -update-bench-pr10
func TestHotPathAllocGate(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc gate skipped in -short mode")
	}
	measured := map[string]int64{}
	if got, err := gateApplyUniform(); err != nil {
		t.Fatal(err)
	} else {
		measured["apply_uniform_small"] = got
	}
	if got, err := gateApplyParallel(); err != nil {
		t.Fatal(err)
	} else {
		measured["apply_parallel_small"] = got
	}
	if got, err := gateBFSSmall(); err != nil {
		t.Fatal(err)
	} else {
		measured["bfs_small"] = got
	}

	raw, err := os.ReadFile(benchPR10Path)
	if *updateBenchPR10 {
		var doc benchPR10
		if err == nil {
			if uerr := json.Unmarshal(raw, &doc); uerr != nil {
				t.Fatal(uerr)
			}
		}
		if doc.Gate == nil {
			doc.Gate = map[string]gatePoint{}
		}
		for name, allocs := range measured {
			doc.Gate[name] = gatePoint{AllocsPerOp: allocs}
		}
		data, merr := json.MarshalIndent(doc, "", "  ")
		if merr != nil {
			t.Fatal(merr)
		}
		if werr := os.WriteFile(benchPR10Path, append(data, '\n'), 0o644); werr != nil {
			t.Fatal(werr)
		}
		t.Logf("wrote gate numbers to %s: %v", benchPR10Path, measured)
		return
	}
	if err != nil {
		t.Fatalf("missing %s (run with -update-bench-pr10 to create): %v", benchPR10Path, err)
	}
	var doc benchPR10
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	for name, got := range measured {
		base, ok := doc.Gate[name]
		if !ok {
			t.Errorf("%s: no gate baseline in %s (run with -update-bench-pr10)", name, benchPR10Path)
			continue
		}
		limit := base.AllocsPerOp + base.AllocsPerOp/4 + 64
		if got > limit {
			t.Errorf("%s: allocs/op regressed: %d > limit %d (baseline %d)",
				name, got, limit, base.AllocsPerOp)
		} else {
			t.Logf("%s: allocs/op %d (baseline %d, limit %d)", name, got, base.AllocsPerOp, limit)
		}
	}
}
