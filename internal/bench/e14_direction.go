package bench

import (
	"fmt"

	"maxwarp/internal/gpualgo"
	"maxwarp/internal/report"
)

// E14DirectionOptimizing compares push (top-down), pull (bottom-up), and the
// hybrid direction heuristic — the optimization the same authors pursued
// next (PACT 2011). Expected shape: pull/hybrid wins on small-diameter
// skewed graphs where middle frontiers cover most vertices; push wins on the
// high-diameter mesh where frontiers stay tiny and pull wastes full-graph
// scans every level; the hybrid tracks the better of the two.
func E14DirectionOptimizing(cfg Config) ([]*report.Table, error) {
	cfg = cfg.WithDefaults()
	ws, err := buildWorkloads(cfg)
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		ID:      "E14",
		Title:   "Direction-optimizing BFS: push vs pull vs hybrid (K=32)",
		Columns: []string{"graph", "strategy", "Mcycles", "speedup vs push", "levels", "pull levels"},
	}
	t.ChartSpec = &report.ChartSpec{GroupCol: 0, BarCol: 1, ValueCol: 3, Unit: "speedup vs push x"}
	fullK := cfg.Device.WarpWidth
	for _, w := range ws {
		run := func(force *gpualgo.Direction) (*gpualgo.BFSDirResult, error) {
			d, err := newDevice(cfg)
			if err != nil {
				return nil, err
			}
			return gpualgo.BFSDirectionOpt(d, w.g, w.src, gpualgo.DirOptions{
				Options: gpualgo.Options{K: fullK, BlockSize: cfg.BlockSize},
				Force:   force,
			})
		}
		push := gpualgo.DirPush
		pull := gpualgo.DirPull
		pushRes, err := run(&push)
		if err != nil {
			return nil, fmt.Errorf("%s push: %w", w.name, err)
		}
		pullRes, err := run(&pull)
		if err != nil {
			return nil, fmt.Errorf("%s pull: %w", w.name, err)
		}
		hybridRes, err := run(nil)
		if err != nil {
			return nil, fmt.Errorf("%s hybrid: %w", w.name, err)
		}
		pullLevels := func(r *gpualgo.BFSDirResult) int {
			n := 0
			for _, d := range r.Schedule {
				if d == gpualgo.DirPull {
					n++
				}
			}
			return n
		}
		base := pushRes.Stats.Cycles
		for _, row := range []struct {
			name string
			r    *gpualgo.BFSDirResult
		}{{"push", pushRes}, {"pull", pullRes}, {"hybrid", hybridRes}} {
			t.AddRow(w.name, row.name,
				report.F(float64(row.r.Stats.Cycles)/1e6, 3),
				report.F(float64(base)/float64(row.r.Stats.Cycles), 2)+"x",
				report.I(int64(row.r.Iterations)),
				report.I(int64(pullLevels(row.r))))
		}
	}
	return []*report.Table{t}, nil
}
