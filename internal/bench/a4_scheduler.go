package bench

import (
	"maxwarp/internal/gpualgo"
	"maxwarp/internal/report"
)

// A4SchedulerPolicy ablates the per-SM warp scheduler: greedy-then-oldest
// (GTO, the default) against loose round-robin (LRR), for both BFS mappings
// across the workload suite. On real hardware GTO usually edges out LRR on
// latency-bound kernels; whichever way it lands here, the headline
// warp-centric speedups must not depend on the scheduler choice.
func A4SchedulerPolicy(cfg Config) ([]*report.Table, error) {
	cfg = cfg.WithDefaults()
	ws, err := buildWorkloads(cfg)
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		ID:      "A4",
		Title:   "Ablation: warp scheduler policy (GTO vs LRR), BFS",
		Columns: []string{"graph", "policy", "K=1 Mcycles", "K=32 Mcycles", "warp-centric speedup"},
	}
	fullK := cfg.Device.WarpWidth
	for _, w := range ws {
		for _, policy := range []string{"gto", "lrr"} {
			dcfg := cfg
			dcfg.Device.SchedulerPolicy = policy
			run := func(k int) (int64, error) {
				d, err := newDevice(dcfg)
				if err != nil {
					return 0, err
				}
				dg := gpualgo.Upload(d, w.g)
				res, err := gpualgo.BFS(d, dg, w.src, gpualgo.Options{K: k, BlockSize: cfg.BlockSize})
				if err != nil {
					return 0, err
				}
				return res.Stats.Cycles, nil
			}
			base, err := run(1)
			if err != nil {
				return nil, err
			}
			warp, err := run(fullK)
			if err != nil {
				return nil, err
			}
			t.AddRow(w.name, policy,
				report.F(float64(base)/1e6, 3),
				report.F(float64(warp)/1e6, 3),
				report.F(float64(base)/float64(warp), 2)+"x")
		}
	}
	return []*report.Table{t}, nil
}
