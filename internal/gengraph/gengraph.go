// Package gengraph generates the synthetic graph workloads used by every
// experiment, replacing the paper's downloaded datasets (see DESIGN.md,
// Substitutions). All generators are deterministic given a seed.
package gengraph

import (
	"fmt"

	"maxwarp/internal/graph"
	"maxwarp/internal/xrand"
)

// RMATParams are the recursive-matrix quadrant probabilities. They must be
// positive and sum to ~1. The canonical Graph500/paper parameters
// (0.57, 0.19, 0.19, 0.05) produce heavily skewed power-law-like graphs.
type RMATParams struct {
	A, B, C, D float64
}

// DefaultRMAT is the canonical skewed parameterization.
var DefaultRMAT = RMATParams{A: 0.57, B: 0.19, C: 0.19, D: 0.05}

func (p RMATParams) validate() error {
	sum := p.A + p.B + p.C + p.D
	if p.A <= 0 || p.B <= 0 || p.C <= 0 || p.D <= 0 {
		return fmt.Errorf("gengraph: RMAT parameters must be positive, got %+v", p)
	}
	if sum < 0.999 || sum > 1.001 {
		return fmt.Errorf("gengraph: RMAT parameters sum to %f, want 1", sum)
	}
	return nil
}

// RMAT generates a directed R-MAT graph with 2^scale vertices and
// edgeFactor*2^scale edges (before de-duplication is NOT applied: multi-edges
// and self-loops are kept, as in Graph500 kernels, because the GPU kernels
// iterate raw adjacency lists). Use RMATSimple for a cleaned version.
func RMAT(scale int, edgeFactor int, p RMATParams, seed uint64) (*graph.CSR, error) {
	if scale < 0 || scale > 30 {
		return nil, fmt.Errorf("gengraph: RMAT scale %d out of range [0,30]", scale)
	}
	if edgeFactor < 0 {
		return nil, fmt.Errorf("gengraph: negative edge factor %d", edgeFactor)
	}
	if err := p.validate(); err != nil {
		return nil, err
	}
	n := 1 << scale
	m := edgeFactor * n
	r := xrand.New(seed)
	edges := make([]graph.Edge, m)
	// Quadrant thresholds for a single uniform draw.
	ab := p.A + p.B
	abc := ab + p.C
	for i := range edges {
		var src, dst int32
		for bit := 0; bit < scale; bit++ {
			u := r.Float64()
			switch {
			case u < p.A:
				// top-left: no bits set
			case u < ab:
				dst |= 1 << bit
			case u < abc:
				src |= 1 << bit
			default:
				src |= 1 << bit
				dst |= 1 << bit
			}
		}
		edges[i] = graph.Edge{Src: src, Dst: dst}
	}
	return graph.FromEdges(n, edges)
}

// RMATSimple is RMAT with duplicate edges and self-loops removed.
func RMATSimple(scale int, edgeFactor int, p RMATParams, seed uint64) (*graph.CSR, error) {
	g, err := RMAT(scale, edgeFactor, p, seed)
	if err != nil {
		return nil, err
	}
	return graph.FromEdgesSimple(g.NumVertices(), g.Edges())
}

// UniformRandom generates a directed Erdős–Rényi-style G(n, m) graph: m edges
// with independently uniform endpoints. Degrees concentrate tightly around
// m/n (binomial), the "regular-ish" regime where thread-per-vertex GPU
// mapping works well.
func UniformRandom(n, m int, seed uint64) (*graph.CSR, error) {
	if n <= 0 {
		return nil, fmt.Errorf("gengraph: need positive vertex count, got %d", n)
	}
	if m < 0 {
		return nil, fmt.Errorf("gengraph: negative edge count %d", m)
	}
	r := xrand.New(seed)
	edges := make([]graph.Edge, m)
	for i := range edges {
		edges[i] = graph.Edge{Src: r.Int32n(int32(n)), Dst: r.Int32n(int32(n))}
	}
	return graph.FromEdges(n, edges)
}

// Mesh2D generates a rows×cols 4-neighbor grid with bidirectional edges —
// the road-network-like regime: uniform low degree, huge diameter.
func Mesh2D(rows, cols int) (*graph.CSR, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("gengraph: mesh dimensions must be positive, got %dx%d", rows, cols)
	}
	n := rows * cols
	id := func(r, c int) int32 { return int32(r*cols + c) }
	edges := make([]graph.Edge, 0, 4*n)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := id(r, c)
			if r+1 < rows {
				edges = append(edges, graph.Edge{Src: v, Dst: id(r+1, c)}, graph.Edge{Src: id(r+1, c), Dst: v})
			}
			if c+1 < cols {
				edges = append(edges, graph.Edge{Src: v, Dst: id(r, c+1)}, graph.Edge{Src: id(r, c+1), Dst: v})
			}
		}
	}
	return graph.FromEdges(n, edges)
}

// Torus2D is Mesh2D with wrap-around edges, making the degree exactly 4
// everywhere (a perfectly regular graph).
func Torus2D(rows, cols int) (*graph.CSR, error) {
	if rows < 3 || cols < 3 {
		return nil, fmt.Errorf("gengraph: torus dimensions must be >= 3, got %dx%d", rows, cols)
	}
	n := rows * cols
	id := func(r, c int) int32 { return int32(((r+rows)%rows)*cols + (c+cols)%cols) }
	edges := make([]graph.Edge, 0, 4*n)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := id(r, c)
			edges = append(edges,
				graph.Edge{Src: v, Dst: id(r+1, c)},
				graph.Edge{Src: v, Dst: id(r-1, c)},
				graph.Edge{Src: v, Dst: id(r, c+1)},
				graph.Edge{Src: v, Dst: id(r, c-1)},
			)
		}
	}
	return graph.FromEdges(n, edges)
}

// WattsStrogatz generates a small-world graph: a ring lattice where each
// vertex connects to its k nearest neighbors on each side, with each edge
// rewired to a uniform random endpoint with probability beta. Produced as a
// directed graph with both edge directions present before rewiring.
func WattsStrogatz(n, k int, beta float64, seed uint64) (*graph.CSR, error) {
	if n <= 0 {
		return nil, fmt.Errorf("gengraph: need positive vertex count, got %d", n)
	}
	if k < 1 || 2*k >= n {
		return nil, fmt.Errorf("gengraph: ring degree k=%d invalid for n=%d", k, n)
	}
	if beta < 0 || beta > 1 {
		return nil, fmt.Errorf("gengraph: rewiring probability %f out of [0,1]", beta)
	}
	r := xrand.New(seed)
	edges := make([]graph.Edge, 0, 2*n*k)
	for v := 0; v < n; v++ {
		for j := 1; j <= k; j++ {
			dst := int32((v + j) % n)
			if r.Float64() < beta {
				dst = r.Int32n(int32(n))
			}
			edges = append(edges, graph.Edge{Src: int32(v), Dst: dst}, graph.Edge{Src: dst, Dst: int32(v)})
		}
	}
	return graph.FromEdgesSimple(n, edges)
}

// StarBurst generates a pathological outlier workload: nHubs vertices of
// degree hubDegree (edges to uniform random targets) on top of a sparse
// uniform background of n vertices with avgDegree background edges each.
// This is the stress case for the paper's "deferring outliers" technique.
func StarBurst(n, nHubs, hubDegree, avgDegree int, seed uint64) (*graph.CSR, error) {
	if n <= 0 || nHubs < 0 || nHubs > n || hubDegree < 0 || avgDegree < 0 {
		return nil, fmt.Errorf("gengraph: invalid StarBurst(n=%d hubs=%d hubDeg=%d avgDeg=%d)", n, nHubs, hubDegree, avgDegree)
	}
	r := xrand.New(seed)
	edges := make([]graph.Edge, 0, n*avgDegree+nHubs*hubDegree)
	for v := 0; v < n; v++ {
		for j := 0; j < avgDegree; j++ {
			edges = append(edges, graph.Edge{Src: int32(v), Dst: r.Int32n(int32(n))})
		}
	}
	// Hubs are spread across the id space so they land in different warps.
	for h := 0; h < nHubs; h++ {
		hub := int32(h * (n / max(nHubs, 1)))
		for j := 0; j < hubDegree; j++ {
			edges = append(edges, graph.Edge{Src: hub, Dst: r.Int32n(int32(n))})
		}
	}
	return graph.FromEdges(n, edges)
}

// EdgeWeights returns a deterministic positive int32 weight per directed edge
// (aligned with g.Col), uniform in [1, maxWeight]. Used by SSSP.
func EdgeWeights(g *graph.CSR, maxWeight int32, seed uint64) []int32 {
	if maxWeight < 1 {
		maxWeight = 1
	}
	r := xrand.New(seed)
	w := make([]int32, g.NumEdges())
	for i := range w {
		w[i] = 1 + r.Int32n(maxWeight)
	}
	return w
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
