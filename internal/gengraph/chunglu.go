package gengraph

import (
	"fmt"
	"math"

	"maxwarp/internal/graph"
	"maxwarp/internal/xrand"
)

// ChungLu generates a graph with a prescribed expected power-law degree
// sequence (the Chung–Lu model): vertex v gets weight ~ (v+1)^(-1/(gamma-1))
// scaled to meet avgDegree, and m = n*avgDegree edges are drawn with
// endpoint probability proportional to weight. Unlike RMAT, the exponent
// gamma is an explicit knob, so degree-skew sensitivity studies can sweep it
// directly.
func ChungLu(n int, avgDegree float64, gamma float64, seed uint64) (*graph.CSR, error) {
	if n <= 0 {
		return nil, fmt.Errorf("gengraph: need positive vertex count, got %d", n)
	}
	if avgDegree <= 0 {
		return nil, fmt.Errorf("gengraph: need positive average degree, got %f", avgDegree)
	}
	if gamma <= 1 {
		return nil, fmt.Errorf("gengraph: power-law exponent gamma=%f must exceed 1", gamma)
	}
	// Weights w_v ∝ (v+1)^(-1/(gamma-1)); cumulative table for sampling.
	exp := -1.0 / (gamma - 1)
	cum := make([]float64, n+1)
	for v := 0; v < n; v++ {
		cum[v+1] = cum[v] + math.Pow(float64(v+1), exp)
	}
	total := cum[n]
	r := xrand.New(seed)
	m := int(avgDegree * float64(n))
	edges := make([]graph.Edge, m)
	sample := func() int32 {
		x := r.Float64() * total
		lo, hi := 0, n
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid+1] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return int32(lo)
	}
	for i := range edges {
		edges[i] = graph.Edge{Src: sample(), Dst: sample()}
	}
	return graph.FromEdges(n, edges)
}
