package gengraph

import (
	"fmt"
	"sort"

	"maxwarp/internal/graph"
)

// Preset names a synthetic stand-in for one of the paper's dataset regimes.
// The original evaluation used downloaded real-world graphs (LiveJournal,
// Patents, road networks, …); we reproduce each graph's *regime* — average
// degree and degree skew — with a seeded generator, because those two
// properties are what drive every result (see DESIGN.md).
type Preset struct {
	// Name identifies the workload in tables ("LiveJournal-like", …).
	Name string
	// Regime is a one-line description of why this workload is in the suite.
	Regime string
	// Build generates the graph at the given scale (|V| ≈ 2^scale).
	Build func(scale int, seed uint64) (*graph.CSR, error)
}

// Presets returns the standard workload suite, ordered from most skewed to
// most regular. This ordering is the x-axis story of the paper: warp-centric
// wins big on the left, and the best virtual-warp width K shrinks toward the
// right.
func Presets() []Preset {
	return []Preset{
		{
			Name:   "WikiTalk-like",
			Regime: "extreme power-law skew (talk-page hubs), low average degree",
			Build: func(scale int, seed uint64) (*graph.CSR, error) {
				return RMAT(scale, 4, RMATParams{A: 0.63, B: 0.18, C: 0.16, D: 0.03}, seed)
			},
		},
		{
			Name:   "LiveJournal-like",
			Regime: "social network: power-law skew, average degree ~14",
			Build: func(scale int, seed uint64) (*graph.CSR, error) {
				return RMAT(scale, 14, DefaultRMAT, seed)
			},
		},
		{
			Name:   "Patents-like",
			Regime: "citation network: moderate skew, average degree ~5",
			Build: func(scale int, seed uint64) (*graph.CSR, error) {
				return RMAT(scale, 5, RMATParams{A: 0.45, B: 0.22, C: 0.22, D: 0.11}, seed)
			},
		},
		{
			Name:   "Random-like",
			Regime: "uniform random: binomial degrees, no skew",
			Build: func(scale int, seed uint64) (*graph.CSR, error) {
				n := 1 << scale
				return UniformRandom(n, 12*n, seed)
			},
		},
		{
			Name:   "RoadNet-like",
			Regime: "2D mesh: uniform degree ~4, huge diameter",
			Build: func(scale int, seed uint64) (*graph.CSR, error) {
				side := 1 << (scale / 2)
				other := 1 << (scale - scale/2)
				return Mesh2D(other, side)
			},
		},
	}
}

// PresetByName returns the preset with the given name.
func PresetByName(name string) (Preset, error) {
	for _, p := range Presets() {
		if p.Name == name {
			return p, nil
		}
	}
	var names []string
	for _, p := range Presets() {
		names = append(names, p.Name)
	}
	sort.Strings(names)
	return Preset{}, fmt.Errorf("gengraph: unknown preset %q (have %v)", name, names)
}
