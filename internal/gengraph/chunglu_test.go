package gengraph

import (
	"reflect"
	"testing"

	"maxwarp/internal/graph"
)

func TestChungLuBasics(t *testing.T) {
	g, err := ChungLu(2000, 8, 2.2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 2000 || g.NumEdges() != 16000 {
		t.Fatalf("V=%d E=%d", g.NumVertices(), g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestChungLuDeterministic(t *testing.T) {
	a, err := ChungLu(500, 6, 2.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ChungLu(500, 6, 2.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Col, b.Col) {
		t.Fatal("not deterministic")
	}
}

func TestChungLuGammaControlsSkew(t *testing.T) {
	// Lower gamma = heavier tail = larger degree CV.
	heavy, err := ChungLu(4000, 8, 2.0, 11)
	if err != nil {
		t.Fatal(err)
	}
	light, err := ChungLu(4000, 8, 3.5, 11)
	if err != nil {
		t.Fatal(err)
	}
	hs, ls := graph.Stats(heavy), graph.Stats(light)
	if hs.CV <= ls.CV {
		t.Fatalf("gamma=2.0 CV %.2f not above gamma=3.5 CV %.2f", hs.CV, ls.CV)
	}
	if hs.MaxDegree <= ls.MaxDegree {
		t.Fatalf("gamma=2.0 max degree %d not above gamma=3.5 %d", hs.MaxDegree, ls.MaxDegree)
	}
}

func TestChungLuValidation(t *testing.T) {
	if _, err := ChungLu(0, 8, 2.2, 1); err == nil {
		t.Error("zero vertices accepted")
	}
	if _, err := ChungLu(10, 0, 2.2, 1); err == nil {
		t.Error("zero degree accepted")
	}
	if _, err := ChungLu(10, 4, 1.0, 1); err == nil {
		t.Error("gamma <= 1 accepted")
	}
}
