package gengraph

import (
	"reflect"
	"testing"

	"maxwarp/internal/graph"
)

func TestRMATBasics(t *testing.T) {
	g, err := RMAT(10, 8, DefaultRMAT, 42)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 1024 {
		t.Fatalf("V = %d, want 1024", g.NumVertices())
	}
	if g.NumEdges() != 8*1024 {
		t.Fatalf("E = %d, want 8192", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRMATDeterministic(t *testing.T) {
	a, err := RMAT(8, 4, DefaultRMAT, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RMAT(8, 4, DefaultRMAT, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Col, b.Col) || !reflect.DeepEqual(a.RowPtr, b.RowPtr) {
		t.Fatal("same seed produced different graphs")
	}
	c, err := RMAT(8, 4, DefaultRMAT, 8)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Col, c.Col) {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestRMATIsSkewed(t *testing.T) {
	skewed, err := RMAT(12, 8, DefaultRMAT, 1)
	if err != nil {
		t.Fatal(err)
	}
	uniform, err := UniformRandom(1<<12, 8<<12, 1)
	if err != nil {
		t.Fatal(err)
	}
	ss, su := graph.Stats(skewed), graph.Stats(uniform)
	if ss.CV <= 2*su.CV {
		t.Fatalf("RMAT CV %.2f not clearly above uniform CV %.2f", ss.CV, su.CV)
	}
	if ss.MaxDegree <= 4*su.MaxDegree {
		t.Fatalf("RMAT max degree %d vs uniform %d: insufficient skew", ss.MaxDegree, su.MaxDegree)
	}
}

func TestRMATParamValidation(t *testing.T) {
	bad := []RMATParams{
		{A: 0.5, B: 0.5, C: 0.5, D: 0.5},
		{A: -0.1, B: 0.5, C: 0.3, D: 0.3},
		{A: 1, B: 0, C: 0, D: 0},
	}
	for _, p := range bad {
		if _, err := RMAT(4, 2, p, 1); err == nil {
			t.Errorf("params %+v accepted", p)
		}
	}
	if _, err := RMAT(-1, 2, DefaultRMAT, 1); err == nil {
		t.Error("negative scale accepted")
	}
	if _, err := RMAT(4, -2, DefaultRMAT, 1); err == nil {
		t.Error("negative edge factor accepted")
	}
}

func TestRMATSimpleIsSimple(t *testing.T) {
	g, err := RMATSimple(9, 8, DefaultRMAT, 3)
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumVertices()
	for v := 0; v < n; v++ {
		adj := g.Neighbors(int32(v))
		for i, w := range adj {
			if w == int32(v) {
				t.Fatalf("self loop at %d", v)
			}
			if i > 0 && adj[i-1] >= w {
				t.Fatalf("unsorted or duplicate neighbor at %d", v)
			}
		}
	}
}

func TestUniformRandomDegreesConcentrate(t *testing.T) {
	g, err := UniformRandom(4096, 12*4096, 5)
	if err != nil {
		t.Fatal(err)
	}
	s := graph.Stats(g)
	if s.AvgDegree != 12 {
		t.Fatalf("avg degree %f, want 12", s.AvgDegree)
	}
	if s.CV > 0.5 {
		t.Fatalf("uniform graph CV %f too high", s.CV)
	}
	if _, err := UniformRandom(0, 10, 1); err == nil {
		t.Error("zero vertices accepted")
	}
	if _, err := UniformRandom(10, -1, 1); err == nil {
		t.Error("negative edges accepted")
	}
}

func TestMesh2D(t *testing.T) {
	g, err := Mesh2D(4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 20 {
		t.Fatalf("V = %d", g.NumVertices())
	}
	// Interior vertices have degree 4, corners 2, edges 3.
	s := graph.Stats(g)
	if s.MinDegree != 2 || s.MaxDegree != 4 {
		t.Fatalf("mesh degrees: %+v", s)
	}
	// Mesh must be strongly connected (all edges bidirectional).
	if c := graph.ConnectedFrom(g, 0); c != 20 {
		t.Fatalf("mesh connectivity from 0: %d/20", c)
	}
	if _, err := Mesh2D(0, 5); err == nil {
		t.Error("zero rows accepted")
	}
}

func TestTorus2DIsRegular(t *testing.T) {
	g, err := Torus2D(6, 8)
	if err != nil {
		t.Fatal(err)
	}
	s := graph.Stats(g)
	if s.MinDegree != 4 || s.MaxDegree != 4 {
		t.Fatalf("torus should be 4-regular: %+v", s)
	}
	if s.CV != 0 {
		t.Fatalf("torus CV = %f", s.CV)
	}
	if _, err := Torus2D(2, 8); err == nil {
		t.Error("degenerate torus accepted")
	}
}

func TestWattsStrogatz(t *testing.T) {
	g, err := WattsStrogatz(500, 3, 0.1, 9)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	s := graph.Stats(g)
	if s.AvgDegree < 4 || s.AvgDegree > 7 {
		t.Fatalf("small-world avg degree %f outside expected band", s.AvgDegree)
	}
	// beta=0 must be the pure ring lattice: exactly 2k-regular.
	ring, err := WattsStrogatz(100, 2, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	rs := graph.Stats(ring)
	if rs.MinDegree != 4 || rs.MaxDegree != 4 {
		t.Fatalf("ring lattice not regular: %+v", rs)
	}
	for _, bad := range [][3]interface{}{} {
		_ = bad
	}
	if _, err := WattsStrogatz(10, 5, 0.1, 1); err == nil {
		t.Error("2k >= n accepted")
	}
	if _, err := WattsStrogatz(10, 2, 1.5, 1); err == nil {
		t.Error("beta > 1 accepted")
	}
}

func TestStarBurst(t *testing.T) {
	g, err := StarBurst(1000, 4, 300, 2, 11)
	if err != nil {
		t.Fatal(err)
	}
	s := graph.Stats(g)
	if s.MaxDegree < 300 {
		t.Fatalf("hub degree %d, want >= 300", s.MaxDegree)
	}
	if s.P50 > 10 {
		t.Fatalf("background degree median %d too high", s.P50)
	}
	if _, err := StarBurst(10, 20, 1, 1, 1); err == nil {
		t.Error("more hubs than vertices accepted")
	}
}

func TestEdgeWeights(t *testing.T) {
	g, err := UniformRandom(100, 500, 2)
	if err != nil {
		t.Fatal(err)
	}
	w := EdgeWeights(g, 10, 3)
	if len(w) != g.NumEdges() {
		t.Fatalf("weights length %d, want %d", len(w), g.NumEdges())
	}
	for i, x := range w {
		if x < 1 || x > 10 {
			t.Fatalf("weight[%d] = %d out of [1,10]", i, x)
		}
	}
	w2 := EdgeWeights(g, 10, 3)
	if !reflect.DeepEqual(w, w2) {
		t.Fatal("weights not deterministic")
	}
}

func TestPresetsBuildAndMatchRegime(t *testing.T) {
	const scale = 10
	var prevCV float64 = 1e9
	for _, p := range Presets() {
		g, err := p.Build(scale, 42)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		s := graph.Stats(g)
		if s.NumVertices < 1<<(scale-1) {
			t.Fatalf("%s: too few vertices %d", p.Name, s.NumVertices)
		}
		// The suite is ordered most-skewed → most-regular; allow slack of 2x
		// because CV is noisy at small scales.
		if s.CV > prevCV*2 {
			t.Fatalf("%s: CV %.2f breaks the skew ordering (prev %.2f)", p.Name, s.CV, prevCV)
		}
		prevCV = s.CV
	}
}

func TestPresetByName(t *testing.T) {
	p, err := PresetByName("RoadNet-like")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "RoadNet-like" {
		t.Fatalf("got %q", p.Name)
	}
	if _, err := PresetByName("nope"); err == nil {
		t.Fatal("unknown preset accepted")
	}
}
