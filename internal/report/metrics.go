package report

// Prometheus-style text exposition for the observability layer: a tiny,
// dependency-free subset of the text format (# HELP / # TYPE comments and
// flat samples with optional labels). The renderer validates and escapes;
// ParsePromText inverts it, so render→parse→render is a fixed point — the
// property the fuzz target holds us to.

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Label is one name="value" pair on a sample.
type Label struct {
	Name  string
	Value string
}

// Sample is one metric sample: optional labels plus a float64 value.
type Sample struct {
	Labels []Label
	Value  float64
}

// MetricFamily is one named metric with its help text, type, and samples.
type MetricFamily struct {
	Name string
	Help string
	// Type is the Prometheus metric type: "counter", "gauge", "histogram",
	// "summary", or "untyped" (the default when empty).
	Type    string
	Samples []Sample
}

// CheckMetricName validates a metric name against the Prometheus grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func CheckMetricName(name string) error {
	if name == "" {
		return fmt.Errorf("report: empty metric name")
	}
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return fmt.Errorf("report: invalid metric name %q (char %q at %d)", name, r, i)
		}
	}
	return nil
}

// CheckLabelName validates a label name against [a-zA-Z_][a-zA-Z0-9_]*
// (names starting with __ are reserved by Prometheus and rejected).
func CheckLabelName(name string) error {
	if name == "" {
		return fmt.Errorf("report: empty label name")
	}
	if strings.HasPrefix(name, "__") {
		return fmt.Errorf("report: reserved label name %q", name)
	}
	for i, r := range name {
		ok := r == '_' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return fmt.Errorf("report: invalid label name %q (char %q at %d)", name, r, i)
		}
	}
	return nil
}

var validTypes = map[string]bool{
	"counter": true, "gauge": true, "histogram": true, "summary": true, "untyped": true,
}

// escapeHelp escapes a HELP string (backslash and newline).
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabelValue escapes a label value (backslash, double quote, newline).
func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatValue renders a sample value the way Prometheus clients do.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// PromText renders metric families in the Prometheus text exposition format.
// Families are rendered sorted by name; each family's samples keep their
// order but their labels are rendered sorted by label name. Invalid metric or
// label names are an error, not silent corruption.
func PromText(fams []MetricFamily) (string, error) {
	fams = append([]MetricFamily(nil), fams...)
	sort.SliceStable(fams, func(i, j int) bool { return fams[i].Name < fams[j].Name })
	var b strings.Builder
	seen := make(map[string]bool)
	for _, f := range fams {
		if err := CheckMetricName(f.Name); err != nil {
			return "", err
		}
		if seen[f.Name] {
			return "", fmt.Errorf("report: duplicate metric family %q", f.Name)
		}
		seen[f.Name] = true
		typ := f.Type
		if typ == "" {
			typ = "untyped"
		}
		if !validTypes[typ] {
			return "", fmt.Errorf("report: metric %q has invalid type %q", f.Name, typ)
		}
		if f.Help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.Name, escapeHelp(f.Help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.Name, typ)
		for _, s := range f.Samples {
			b.WriteString(f.Name)
			if len(s.Labels) > 0 {
				labels := append([]Label(nil), s.Labels...)
				sort.SliceStable(labels, func(i, j int) bool { return labels[i].Name < labels[j].Name })
				b.WriteByte('{')
				for i, l := range labels {
					if err := CheckLabelName(l.Name); err != nil {
						return "", err
					}
					if i > 0 {
						b.WriteByte(',')
					}
					// Not %q: the value is already escaped, and Go quoting
					// would escape the escapes (fuzz-found double escaping).
					fmt.Fprintf(&b, "%s=\"%s\"", l.Name, escapeLabelValue(l.Value))
				}
				b.WriteByte('}')
			}
			b.WriteByte(' ')
			b.WriteString(formatValue(s.Value))
			b.WriteByte('\n')
		}
	}
	return b.String(), nil
}

// ParsePromText parses text produced by PromText back into metric families.
// It accepts the subset PromText emits: # HELP / # TYPE comments and sample
// lines with optional sorted labels. Unknown comment lines are skipped;
// malformed sample lines are an error.
func ParsePromText(text string) ([]MetricFamily, error) {
	var fams []MetricFamily
	byName := make(map[string]*MetricFamily)
	family := func(name string) *MetricFamily {
		if f, ok := byName[name]; ok {
			return f
		}
		fams = append(fams, MetricFamily{Name: name})
		f := &fams[len(fams)-1]
		byName[name] = f
		return f
	}
	for lineNo, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			rest, kind := "", ""
			switch {
			case strings.HasPrefix(line, "# HELP "):
				rest, kind = line[len("# HELP "):], "help"
			case strings.HasPrefix(line, "# TYPE "):
				rest, kind = line[len("# TYPE "):], "type"
			default:
				continue // other comments are legal and ignored
			}
			name, val, ok := strings.Cut(rest, " ")
			if !ok && kind == "help" {
				name, val = rest, ""
			}
			if err := CheckMetricName(name); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo+1, err)
			}
			f := family(name)
			if kind == "help" {
				f.Help = unescapeHelp(val)
			} else {
				if !validTypes[val] {
					return nil, fmt.Errorf("line %d: invalid type %q", lineNo+1, val)
				}
				f.Type = val
			}
			continue
		}
		name, sample, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo+1, err)
		}
		f := family(name)
		f.Samples = append(f.Samples, sample)
	}
	// Match the renderer's defaults and ordering so round-trips are stable.
	for i := range fams {
		if fams[i].Type == "" {
			fams[i].Type = "untyped"
		}
	}
	sort.SliceStable(fams, func(i, j int) bool { return fams[i].Name < fams[j].Name })
	return fams, nil
}

func unescapeHelp(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			switch s[i+1] {
			case 'n':
				b.WriteByte('\n')
				i++
				continue
			case '\\':
				b.WriteByte('\\')
				i++
				continue
			}
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

func parseSampleLine(line string) (string, Sample, error) {
	var s Sample
	rest := line
	// Metric name runs until '{' or ' '.
	end := strings.IndexAny(rest, "{ ")
	if end < 0 {
		return "", s, fmt.Errorf("report: sample line without value: %q", line)
	}
	name := rest[:end]
	if err := CheckMetricName(name); err != nil {
		return "", s, err
	}
	rest = rest[end:]
	if rest[0] == '{' {
		rest = rest[1:]
		for {
			if rest == "" {
				return "", s, fmt.Errorf("report: unterminated label set: %q", line)
			}
			if rest[0] == '}' {
				rest = rest[1:]
				break
			}
			eq := strings.IndexByte(rest, '=')
			if eq < 0 {
				return "", s, fmt.Errorf("report: malformed label in %q", line)
			}
			lname := rest[:eq]
			if err := CheckLabelName(lname); err != nil {
				return "", s, err
			}
			rest = rest[eq+1:]
			if rest == "" || rest[0] != '"' {
				return "", s, fmt.Errorf("report: unquoted label value in %q", line)
			}
			lval, remain, err := parseQuoted(rest)
			if err != nil {
				return "", s, err
			}
			s.Labels = append(s.Labels, Label{Name: lname, Value: lval})
			rest = remain
			if rest != "" && rest[0] == ',' {
				rest = rest[1:]
			}
		}
	}
	rest = strings.TrimPrefix(rest, " ")
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		return "", s, fmt.Errorf("report: bad sample value in %q: %w", line, err)
	}
	s.Value = v
	return name, s, nil
}

// parseQuoted consumes a double-quoted, backslash-escaped string at the
// start of s, returning the value and the unconsumed remainder.
func parseQuoted(s string) (string, string, error) {
	if s == "" || s[0] != '"' {
		return "", "", fmt.Errorf("report: expected quoted string")
	}
	var b strings.Builder
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if i+1 >= len(s) {
				return "", "", fmt.Errorf("report: dangling escape in %q", s)
			}
			i++
			switch s[i] {
			case 'n':
				b.WriteByte('\n')
			case '\\', '"':
				b.WriteByte(s[i])
			default:
				// Prometheus treats unknown escapes literally.
				b.WriteByte('\\')
				b.WriteByte(s[i])
			}
		case '"':
			return b.String(), s[i+1:], nil
		default:
			b.WriteByte(s[i])
		}
	}
	return "", "", fmt.Errorf("report: unterminated quoted string in %q", s)
}

// FamilyByName returns the family with that name, or nil. A convenience for
// scrape-side assertions (CI smoke checks, load-test gates) over the output
// of ParsePromText.
func FamilyByName(fams []MetricFamily, name string) *MetricFamily {
	for i := range fams {
		if fams[i].Name == name {
			return &fams[i]
		}
	}
	return nil
}

// SampleValue returns the value of the first sample in the named family
// whose labels include every given pair, and whether one was found. With no
// label arguments it matches the family's first sample.
func SampleValue(fams []MetricFamily, name string, labels ...Label) (float64, bool) {
	f := FamilyByName(fams, name)
	if f == nil {
		return 0, false
	}
	for _, s := range f.Samples {
		if sampleHasLabels(s, labels) {
			return s.Value, true
		}
	}
	return 0, false
}

func sampleHasLabels(s Sample, want []Label) bool {
	for _, w := range want {
		found := false
		for _, l := range s.Labels {
			if l.Name == w.Name && l.Value == w.Value {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}
