// Package report renders experiment results as aligned text, markdown, and
// CSV tables — the repo's equivalent of the paper's tables and figure data
// series.
package report

import (
	"fmt"
	"strings"
)

// Table is a titled grid of results with optional footnotes.
type Table struct {
	// ID is the experiment identifier (e.g. "E4").
	ID string
	// Title describes what the table reproduces.
	Title string
	// Columns are the header labels.
	Columns []string
	// Rows hold the cells, one slice per row, each len(Columns) long.
	Rows [][]string
	// Notes are rendered beneath the table.
	Notes []string
	// ChartSpec, when non-nil, describes how to render this table as a bar
	// chart (the repo's figure format).
	ChartSpec *ChartSpec
}

// ChartSpec names the columns a chart is built from.
type ChartSpec struct {
	// GroupCol labels bar groups, BarCol individual bars, ValueCol the
	// numeric cell ("1.50x" speedup cells parse too).
	GroupCol, BarCol, ValueCol int
	// Unit labels the value axis.
	Unit string
	// LogScale selects logarithmic bar lengths.
	LogScale bool
}

// Chartable reports whether the table carries a chart spec.
func (t *Table) Chartable() bool { return t.ChartSpec != nil }

// ToChart renders the table per its ChartSpec (nil spec yields a best-effort
// first-three-columns chart).
func (t *Table) ToChart() *Chart {
	spec := t.ChartSpec
	if spec == nil {
		spec = &ChartSpec{GroupCol: 0, BarCol: 1, ValueCol: len(t.Columns) - 1}
	}
	c := ChartFromTable(t, spec.GroupCol, spec.BarCol, spec.ValueCol)
	c.Unit = spec.Unit
	c.LogScale = spec.LogScale
	return c
}

// AddRow appends a row, padding or truncating to the column count.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Columns))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// Markdown renders the table as GitHub-flavored markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s: %s\n\n", t.ID, t.Title)
	}
	fmt.Fprintf(&b, "| %s |\n", strings.Join(t.Columns, " | "))
	seps := make([]string, len(t.Columns))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Fprintf(&b, "| %s |\n", strings.Join(seps, " | "))
	for _, row := range t.Rows {
		fmt.Fprintf(&b, "| %s |\n", strings.Join(row, " | "))
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n%s\n", n)
	}
	return b.String()
}

// Text renders the table with aligned columns for terminal output.
func (t *Table) Text() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s: %s\n", t.ID, t.Title)
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the table as RFC-4180-ish CSV (quotes only where needed).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				b.WriteString(`"` + strings.ReplaceAll(cell, `"`, `""`) + `"`)
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// F formats a float with the given precision, trimming to a compact form.
func F(v float64, prec int) string {
	return fmt.Sprintf("%.*f", prec, v)
}

// I formats an integer.
func I(v int64) string { return fmt.Sprintf("%d", v) }

// Sci formats large magnitudes in engineering style (e.g. 1.23e+06).
func Sci(v float64) string { return fmt.Sprintf("%.3g", v) }
