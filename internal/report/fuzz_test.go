package report

import (
	"reflect"
	"testing"
)

// FuzzPromTextRoundTrip checks the render→parse→render fixed point: any text
// our parser accepts must re-render to a form that parses to the same
// families and renders identically from then on. NaN values make Sample
// structs incomparable with reflect.DeepEqual, so equality is asserted on
// the rendered text (which is also what downstream scrapers consume).
func FuzzPromTextRoundTrip(f *testing.F) {
	seed, err := PromText([]MetricFamily{
		{
			Name: "maxwarp_cycles_total", Help: "total cycles", Type: "counter",
			Samples: []Sample{{Value: 12345}},
		},
		{
			Name: "maxwarp_frontier_vertices_total", Help: "per-SM frontier \\ \"counts\"\nsecond line", Type: "counter",
			Samples: []Sample{
				{Labels: []Label{{Name: "sm", Value: "0"}}, Value: 7},
				{Labels: []Label{{Name: "sm", Value: "wei\\rd\"\nvalue"}}, Value: 8.25},
			},
		},
		{
			Name: "maxwarp_instr_latency_cycles", Type: "histogram",
			Samples: []Sample{
				{Labels: []Label{{Name: "le", Value: "1"}}, Value: 3},
				{Labels: []Label{{Name: "le", Value: "+Inf"}}, Value: 9},
			},
		},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add("up 1\n")
	f.Add("# TYPE a gauge\na{x=\"\\\\\\n\\\"\"} -0.5\n")
	f.Add("a 1e300\nb NaN\nc +Inf\n")

	f.Fuzz(func(t *testing.T, text string) {
		fams, err := ParsePromText(text)
		if err != nil {
			return // rejected input: nothing to round-trip
		}
		first, err := PromText(fams)
		if err != nil {
			// The parser accepted something the renderer refuses: parsed
			// output must always be renderable.
			t.Fatalf("parsed text does not re-render: %v\ninput: %q", err, text)
		}
		fams2, err := ParsePromText(first)
		if err != nil {
			t.Fatalf("rendered text does not re-parse: %v\nrendered: %q", err, first)
		}
		second, err := PromText(fams2)
		if err != nil {
			t.Fatalf("re-parsed families do not re-render: %v", err)
		}
		if first != second {
			t.Fatalf("render/parse is not a fixed point:\nfirst:  %q\nsecond: %q", first, second)
		}
	})
}

// TestPromTextRoundTripPreservesFamilies is the deterministic companion: for
// NaN-free documents the parsed families must match structurally, not just
// textually.
func TestPromTextRoundTripPreservesFamilies(t *testing.T) {
	fams := []MetricFamily{
		{Name: "a_total", Help: "with\nnewline and back\\slash", Type: "counter",
			Samples: []Sample{{Value: 1}, {Labels: []Label{{Name: "k", Value: "v w"}}, Value: 2}}},
		{Name: "b", Type: "gauge",
			Samples: []Sample{{Labels: []Label{{Name: "q", Value: "a\"b\\c\nd"}}, Value: -7.5}}},
	}
	text, err := PromText(fams)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParsePromText(text)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, fams) {
		t.Fatalf("round trip changed families:\n got: %+v\nwant: %+v", got, fams)
	}
}
