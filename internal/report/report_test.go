package report

import (
	"strings"
	"testing"
)

func sample() *Table {
	t := &Table{
		ID:      "E4",
		Title:   "speedups",
		Columns: []string{"graph", "speedup"},
		Notes:   []string{"a note"},
	}
	t.AddRow("rmat", "3.10x")
	t.AddRow("mesh, small", "0.90x")
	return t
}

func TestMarkdown(t *testing.T) {
	md := sample().Markdown()
	for _, want := range []string{
		"### E4: speedups",
		"| graph | speedup |",
		"| --- | --- |",
		"| rmat | 3.10x |",
		"a note",
	} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestText(t *testing.T) {
	txt := sample().Text()
	if !strings.Contains(txt, "E4: speedups") || !strings.Contains(txt, "rmat") {
		t.Fatalf("text rendering wrong:\n%s", txt)
	}
	// Columns align: header and first row start the second column at the
	// same offset.
	lines := strings.Split(txt, "\n")
	var header, row string
	for i, l := range lines {
		if strings.HasPrefix(l, "graph") {
			header = l
			row = lines[i+2]
			break
		}
	}
	if strings.Index(header, "speedup") != strings.Index(row, "3.10x") {
		t.Fatalf("columns misaligned:\n%s", txt)
	}
}

func TestCSVQuoting(t *testing.T) {
	csv := sample().CSV()
	if !strings.Contains(csv, `"mesh, small"`) {
		t.Fatalf("comma cell not quoted:\n%s", csv)
	}
	if !strings.HasPrefix(csv, "graph,speedup\n") {
		t.Fatalf("csv header wrong:\n%s", csv)
	}
	q := &Table{Columns: []string{"a"}}
	q.AddRow(`say "hi"`)
	if !strings.Contains(q.CSV(), `"say ""hi"""`) {
		t.Fatalf("quote escaping wrong:\n%s", q.CSV())
	}
}

func TestAddRowPads(t *testing.T) {
	tab := &Table{Columns: []string{"a", "b", "c"}}
	tab.AddRow("1")
	tab.AddRow("1", "2", "3", "4")
	if len(tab.Rows[0]) != 3 || len(tab.Rows[1]) != 3 {
		t.Fatalf("rows not normalized: %v", tab.Rows)
	}
	if tab.Rows[1][2] != "3" {
		t.Fatalf("truncation wrong: %v", tab.Rows[1])
	}
}

func TestFormatters(t *testing.T) {
	if F(1.23456, 2) != "1.23" {
		t.Fatal("F wrong")
	}
	if I(42) != "42" {
		t.Fatal("I wrong")
	}
	if Sci(1234567) != "1.23e+06" {
		t.Fatalf("Sci wrong: %s", Sci(1234567))
	}
}
