package report

import (
	"strings"
	"testing"
)

func TestChartText(t *testing.T) {
	c := &Chart{ID: "F1", Title: "speedups", Unit: "x", Width: 10}
	c.Group("rmat")
	c.Bar("K=2", 2)
	c.Bar("K=32", 10)
	c.Group("mesh")
	c.Bar("K=2", 1)
	out := c.Text()
	for _, want := range []string{"F1: speedups (x)", "rmat", "mesh", "K=32"} {
		if !strings.Contains(out, want) {
			t.Fatalf("chart missing %q:\n%s", want, out)
		}
	}
	// The biggest bar gets the full width, proportional bars shorter.
	lines := strings.Split(out, "\n")
	var k32, k2 int
	for _, l := range lines {
		if strings.Contains(l, "K=32") {
			k32 = strings.Count(l, "#")
		} else if strings.Contains(l, "K=2 ") && k2 == 0 {
			k2 = strings.Count(l, "#")
		}
	}
	if k32 != 10 {
		t.Fatalf("max bar width %d, want 10", k32)
	}
	if k2 != 2 {
		t.Fatalf("proportional bar width %d, want 2", k2)
	}
}

func TestChartZeroAndTinyValues(t *testing.T) {
	c := &Chart{Width: 10}
	c.Bar("zero", 0)
	c.Bar("tiny", 0.001)
	c.Bar("big", 100)
	out := c.Text()
	lines := strings.Split(out, "\n")
	for _, l := range lines {
		if strings.Contains(l, "zero") && strings.Count(l, "#") != 0 {
			t.Fatalf("zero value drew a bar: %s", l)
		}
		if strings.Contains(l, "tiny") && strings.Count(l, "#") != 1 {
			t.Fatalf("tiny positive value should draw one cell: %s", l)
		}
	}
}

func TestChartLogScale(t *testing.T) {
	c := &Chart{Width: 30, LogScale: true}
	c.Bar("a", 1)
	c.Bar("b", 10)
	c.Bar("c", 100)
	out := c.Text()
	var widths []int
	for _, l := range strings.Split(out, "\n") {
		if strings.Contains(l, "|") {
			widths = append(widths, strings.Count(l, "#"))
		}
	}
	if len(widths) != 3 {
		t.Fatalf("bars missing: %v", widths)
	}
	// Log scale: equal ratios give equal width steps.
	d1 := widths[1] - widths[0]
	d2 := widths[2] - widths[1]
	if d1 <= 0 || d2 <= 0 || abs(d1-d2) > 2 {
		t.Fatalf("log steps uneven: %v", widths)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestChartFromTable(t *testing.T) {
	tab := &Table{
		ID:      "E4",
		Title:   "speedups",
		Columns: []string{"graph", "K", "speedup"},
	}
	tab.AddRow("rmat", "2", "1.76x")
	tab.AddRow("rmat", "32", "16.99x")
	tab.AddRow("mesh", "2", "1.42x")
	tab.AddRow("mesh", "32", "bogus") // skipped
	c := ChartFromTable(tab, 0, 1, 2)
	out := c.Text()
	if !strings.Contains(out, "rmat") || !strings.Contains(out, "mesh") {
		t.Fatalf("groups missing:\n%s", out)
	}
	if !strings.Contains(out, "16.99") {
		t.Fatalf("value missing:\n%s", out)
	}
	if strings.Count(out, "mesh") != 1 {
		t.Fatalf("group repeated:\n%s", out)
	}
	// Bogus row skipped: only three bars.
	if got := strings.Count(out, "|"); got != 3 {
		t.Fatalf("bar count %d, want 3:\n%s", got, out)
	}
}

func TestChartBarWithoutGroup(t *testing.T) {
	c := &Chart{}
	c.Bar("solo", 5)
	if !strings.Contains(c.Text(), "solo") {
		t.Fatal("ungrouped bar lost")
	}
}
