package report

import "testing"

func TestFamilyLookupHelpers(t *testing.T) {
	fams := []MetricFamily{
		{Name: "a_total", Type: "counter", Samples: []Sample{{Value: 3}}},
		{Name: "b_total", Type: "counter", Samples: []Sample{
			{Labels: []Label{{Name: "code", Value: "200"}, {Name: "algo", Value: "bfs"}}, Value: 5},
			{Labels: []Label{{Name: "code", Value: "429"}}, Value: 7},
		}},
	}
	if f := FamilyByName(fams, "a_total"); f == nil || f.Samples[0].Value != 3 {
		t.Fatalf("FamilyByName(a_total) = %+v", f)
	}
	if f := FamilyByName(fams, "missing"); f != nil {
		t.Fatalf("FamilyByName(missing) = %+v, want nil", f)
	}
	if v, ok := SampleValue(fams, "a_total"); !ok || v != 3 {
		t.Fatalf("SampleValue(a_total) = %v, %v", v, ok)
	}
	if v, ok := SampleValue(fams, "b_total", Label{Name: "code", Value: "429"}); !ok || v != 7 {
		t.Fatalf("SampleValue(b_total, 429) = %v, %v", v, ok)
	}
	// Partial label match: a subset of a sample's labels is enough.
	if v, ok := SampleValue(fams, "b_total", Label{Name: "algo", Value: "bfs"}); !ok || v != 5 {
		t.Fatalf("SampleValue(b_total, algo=bfs) = %v, %v", v, ok)
	}
	if _, ok := SampleValue(fams, "b_total", Label{Name: "code", Value: "500"}); ok {
		t.Fatal("SampleValue matched a label value that does not exist")
	}
}
