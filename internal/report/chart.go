package report

import (
	"fmt"
	"math"
	"strings"
)

// Chart renders grouped horizontal bar charts as monospace text — the
// repo's stand-in for the paper's figures. Each row is one bar; rows can be
// grouped (e.g. one group per graph, one bar per K).
type Chart struct {
	// ID and Title mirror Table.
	ID    string
	Title string
	// Unit labels the value axis (e.g. "speedup ×", "Mcycles").
	Unit string
	// Width is the maximum bar width in characters (default 50).
	Width int
	// LogScale renders bar lengths on log10 (useful for order-of-magnitude
	// spreads); values <= 0 are drawn as empty bars.
	LogScale bool

	groups []chartGroup
}

type chartGroup struct {
	label string
	bars  []chartBar
}

type chartBar struct {
	label string
	value float64
}

// Group starts a new bar group with the given label.
func (c *Chart) Group(label string) {
	c.groups = append(c.groups, chartGroup{label: label})
}

// Bar appends a bar to the current group (creating an unlabeled group if
// none exists).
func (c *Chart) Bar(label string, value float64) {
	if len(c.groups) == 0 {
		c.groups = append(c.groups, chartGroup{})
	}
	g := &c.groups[len(c.groups)-1]
	g.bars = append(g.bars, chartBar{label: label, value: value})
}

// Text renders the chart.
func (c *Chart) Text() string {
	width := c.Width
	if width <= 0 {
		width = 50
	}
	maxVal := 0.0
	labelW := 0
	for _, g := range c.groups {
		for _, b := range g.bars {
			if b.value > maxVal {
				maxVal = b.value
			}
			if len(b.label) > labelW {
				labelW = len(b.label)
			}
		}
	}
	var sb strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&sb, "%s: %s", c.ID, c.Title)
		if c.Unit != "" {
			fmt.Fprintf(&sb, " (%s)", c.Unit)
		}
		sb.WriteByte('\n')
	}
	scale := func(v float64) int {
		if v <= 0 || maxVal <= 0 {
			return 0
		}
		if c.LogScale {
			// Map [1, maxVal] to [1, width] on log10; values < 1 get 1 cell.
			if maxVal <= 1 {
				return 1
			}
			f := math.Log10(v) / math.Log10(maxVal)
			if f < 0 {
				f = 0
			}
			n := int(f*float64(width-1)) + 1
			return n
		}
		n := int(v / maxVal * float64(width))
		if n == 0 && v > 0 {
			n = 1
		}
		return n
	}
	for _, g := range c.groups {
		if g.label != "" {
			fmt.Fprintf(&sb, "%s\n", g.label)
		}
		for _, b := range g.bars {
			fmt.Fprintf(&sb, "  %-*s |%s %s\n",
				labelW, b.label,
				strings.Repeat("#", scale(b.value)),
				trimFloat(b.value))
		}
	}
	return sb.String()
}

// trimFloat formats a value compactly: integers without decimals, small
// values with two.
func trimFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e9 {
		return fmt.Sprintf("%.0f", v)
	}
	if math.Abs(v) >= 100 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.2f", v)
}

// ChartFromTable builds a grouped chart from a table: groupCol labels the
// groups, barCol the bars, valueCol the numeric values (cells ending in "x"
// are parsed as speedups). Rows with unparsable values are skipped.
func ChartFromTable(t *Table, groupCol, barCol, valueCol int) *Chart {
	c := &Chart{ID: t.ID, Title: t.Title}
	lastGroup := "\x00"
	for _, row := range t.Rows {
		if groupCol >= len(row) || barCol >= len(row) || valueCol >= len(row) {
			continue
		}
		v, ok := parseNumeric(row[valueCol])
		if !ok {
			continue
		}
		if row[groupCol] != lastGroup {
			c.Group(row[groupCol])
			lastGroup = row[groupCol]
		}
		c.Bar(row[barCol], v)
	}
	return c
}

func parseNumeric(cell string) (float64, bool) {
	cell = strings.TrimSuffix(strings.TrimSpace(cell), "x")
	var v float64
	_, err := fmt.Sscanf(cell, "%g", &v)
	return v, err == nil
}
