package obs

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"maxwarp/internal/report"
)

// Host-side metrics. The sharded Counter above is built for kernel-side
// accounting, where the simulator guarantees one goroutine per SM shard; a
// long-running service needs the opposite contract — many request-handling
// goroutines hammering the same counter concurrently. HostMetrics provides
// that: atomic counters (optionally labeled), function-backed gauges, and
// power-of-two latency histograms, all safe for unsynchronized concurrent
// use and rendered through the same report.MetricFamily pipeline as the
// rest of the observability layer.

// HostCounter is one monotonically increasing atomic counter.
type HostCounter struct {
	v atomic.Int64
}

// Add increments the counter. Safe for concurrent use.
func (c *HostCounter) Add(delta int64) { c.v.Add(delta) }

// Inc increments the counter by one. Safe for concurrent use.
func (c *HostCounter) Inc() { c.v.Add(1) }

// Value returns the current total.
func (c *HostCounter) Value() int64 { return c.v.Load() }

// HostCounterVec is a family of HostCounters keyed by label values.
type HostCounterVec struct {
	name   string
	help   string
	labels []string

	mu   sync.Mutex
	kids map[string]*vecChild
}

type vecChild struct {
	values []string
	c      HostCounter
}

// With returns the child counter for the given label values (one per label
// name, in declaration order), creating it on first use.
func (v *HostCounterVec) With(values ...string) *HostCounter {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("obs: counter %q wants %d label values, got %d", v.name, len(v.labels), len(values)))
	}
	key := labelKey(values)
	v.mu.Lock()
	defer v.mu.Unlock()
	kid, ok := v.kids[key]
	if !ok {
		kid = &vecChild{values: append([]string(nil), values...)}
		v.kids[key] = kid
	}
	return &kid.c
}

// Value returns the child's current total, zero if that child was never
// touched.
func (v *HostCounterVec) Value(values ...string) int64 {
	return v.With(values...).Value()
}

func labelKey(values []string) string {
	key := ""
	for _, s := range values {
		key += strconv.Itoa(len(s)) + ":" + s
	}
	return key
}

// HostGauge is a function-backed gauge: the value is read at scrape time.
type HostGauge struct {
	name string
	help string
	fn   func() float64
}

// HostGaugeVec is a family of function-backed gauges keyed by label values
// (e.g. one breaker-state gauge per device).
type HostGaugeVec struct {
	name   string
	help   string
	labels []string

	mu   sync.Mutex
	kids map[string]*gaugeChild
}

type gaugeChild struct {
	values []string
	fn     func() float64
}

// Register installs fn as the child gauge for the given label values; fn is
// called at scrape time and must be safe for concurrent use. Re-registering
// the same label values replaces the function.
func (v *HostGaugeVec) Register(fn func() float64, values ...string) {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("obs: gauge %q wants %d label values, got %d", v.name, len(v.labels), len(values)))
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	v.kids[labelKey(values)] = &gaugeChild{values: append([]string(nil), values...), fn: fn}
}

// HostHistBuckets is the fixed bucket count of a HostHist: powers of two
// from 1 up to 2^(HostHistBuckets-2), plus a +Inf overflow bucket.
const HostHistBuckets = 32

// HostHist is a concurrency-safe histogram with power-of-two buckets,
// matching the shape of the simulator's per-launch ProfileHist. Observe
// values in whatever integer unit the name advertises (microseconds for
// latencies).
type HostHist struct {
	buckets [HostHistBuckets]atomic.Int64
	sum     atomic.Int64
	count   atomic.Int64
}

// Observe records one value. Safe for concurrent use.
func (h *HostHist) Observe(v int64) {
	h.buckets[hostBucketIndex(v)].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *HostHist) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *HostHist) Sum() int64 { return h.sum.Load() }

// Quantile returns an upper bound for the q-quantile (q in [0,1]) from the
// bucket counts: the upper bound of the first bucket whose cumulative count
// reaches q of the total. Returns 0 with no observations.
func (h *HostHist) Quantile(q float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := 0; i < HostHistBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= rank {
			if ub := hostBucketUpperBound(i); ub >= 0 {
				return ub
			}
			return math.MaxInt64
		}
	}
	return math.MaxInt64
}

// hostBucketIndex maps v to its bucket: bucket i holds values in
// (2^(i-1), 2^i] with bucket 0 holding v <= 1, and the last bucket
// everything larger than 2^(HostHistBuckets-2).
func hostBucketIndex(v int64) int {
	if v <= 1 {
		return 0
	}
	i := 64 - bits.LeadingZeros64(uint64(v-1))
	if i >= HostHistBuckets-1 {
		return HostHistBuckets - 1
	}
	return i
}

// hostBucketUpperBound returns bucket i's inclusive upper bound, or -1 for
// the +Inf overflow bucket.
func hostBucketUpperBound(i int) int64 {
	if i >= HostHistBuckets-1 {
		return -1
	}
	return int64(1) << i
}

// HostHistVec is a family of HostHists keyed by label values.
type HostHistVec struct {
	name   string
	help   string
	labels []string

	mu   sync.Mutex
	kids map[string]*histChild
}

type histChild struct {
	values []string
	h      HostHist
}

// With returns the child histogram for the given label values, creating it
// on first use.
func (v *HostHistVec) With(values ...string) *HostHist {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("obs: histogram %q wants %d label values, got %d", v.name, len(v.labels), len(values)))
	}
	key := labelKey(values)
	v.mu.Lock()
	defer v.mu.Unlock()
	kid, ok := v.kids[key]
	if !ok {
		kid = &histChild{values: append([]string(nil), values...)}
		v.kids[key] = kid
	}
	return &kid.h
}

// HostMetrics is a registry of host-side metrics. Registration takes a
// lock; the metrics themselves are atomic.
type HostMetrics struct {
	mu        sync.Mutex
	counters  map[string]*hostNamed[*HostCounter]
	vecs      map[string]*HostCounterVec
	gauges    map[string]*HostGauge
	gaugeVecs map[string]*HostGaugeVec
	hists     map[string]*hostNamed[*HostHist]
	histVecs  map[string]*HostHistVec
	order     []string
}

type hostNamed[T any] struct {
	name string
	help string
	v    T
}

// NewHostMetrics creates an empty host-side registry.
func NewHostMetrics() *HostMetrics {
	return &HostMetrics{
		counters:  make(map[string]*hostNamed[*HostCounter]),
		vecs:      make(map[string]*HostCounterVec),
		gauges:    make(map[string]*HostGauge),
		gaugeVecs: make(map[string]*HostGaugeVec),
		hists:     make(map[string]*hostNamed[*HostHist]),
		histVecs:  make(map[string]*HostHistVec),
	}
}

func (m *HostMetrics) register(name string) {
	if err := report.CheckMetricName(name); err != nil {
		panic(fmt.Sprintf("obs: %v", err))
	}
	m.order = append(m.order, name)
}

// Counter returns the registered counter, creating it on first use.
func (m *HostMetrics) Counter(name, help string) *HostCounter {
	m.mu.Lock()
	defer m.mu.Unlock()
	if c, ok := m.counters[name]; ok {
		return c.v
	}
	m.register(name)
	c := &hostNamed[*HostCounter]{name: name, help: help, v: &HostCounter{}}
	m.counters[name] = c
	return c.v
}

// CounterVec returns the registered labeled counter family, creating it on
// first use. The label names of the first registration win.
func (m *HostMetrics) CounterVec(name, help string, labels ...string) *HostCounterVec {
	m.mu.Lock()
	defer m.mu.Unlock()
	if v, ok := m.vecs[name]; ok {
		return v
	}
	m.register(name)
	v := &HostCounterVec{name: name, help: help, labels: append([]string(nil), labels...), kids: make(map[string]*vecChild)}
	m.vecs[name] = v
	return v
}

// Gauge registers a function-backed gauge; fn is called at scrape time and
// must be safe for concurrent use.
func (m *HostMetrics) Gauge(name, help string, fn func() float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.gauges[name]; ok {
		return
	}
	m.register(name)
	m.gauges[name] = &HostGauge{name: name, help: help, fn: fn}
}

// GaugeVec returns the registered labeled gauge family, creating it on
// first use; attach children with Register.
func (m *HostMetrics) GaugeVec(name, help string, labels ...string) *HostGaugeVec {
	m.mu.Lock()
	defer m.mu.Unlock()
	if v, ok := m.gaugeVecs[name]; ok {
		return v
	}
	m.register(name)
	v := &HostGaugeVec{name: name, help: help, labels: append([]string(nil), labels...), kids: make(map[string]*gaugeChild)}
	m.gaugeVecs[name] = v
	return v
}

// Histogram returns the registered histogram, creating it on first use.
func (m *HostMetrics) Histogram(name, help string) *HostHist {
	m.mu.Lock()
	defer m.mu.Unlock()
	if h, ok := m.hists[name]; ok {
		return h.v
	}
	m.register(name)
	h := &hostNamed[*HostHist]{name: name, help: help, v: &HostHist{}}
	m.hists[name] = h
	return h.v
}

// HistogramVec returns the registered labeled histogram family, creating it
// on first use.
func (m *HostMetrics) HistogramVec(name, help string, labels ...string) *HostHistVec {
	m.mu.Lock()
	defer m.mu.Unlock()
	if v, ok := m.histVecs[name]; ok {
		return v
	}
	m.register(name)
	v := &HostHistVec{name: name, help: help, labels: append([]string(nil), labels...), kids: make(map[string]*histChild)}
	m.histVecs[name] = v
	return v
}

// Families renders every registered metric as Prometheus metric families,
// sorted by name, with labeled children sorted by label values — a
// deterministic snapshot regardless of registration or touch order.
func (m *HostMetrics) Families() []report.MetricFamily {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := append([]string(nil), m.order...)
	sort.Strings(names)
	var fams []report.MetricFamily
	for _, name := range names {
		switch {
		case m.counters[name] != nil:
			c := m.counters[name]
			fams = append(fams, report.MetricFamily{
				Name: c.name, Help: c.help, Type: "counter",
				Samples: []report.Sample{{Value: float64(c.v.Value())}},
			})
		case m.vecs[name] != nil:
			fams = append(fams, m.vecs[name].family())
		case m.gauges[name] != nil:
			g := m.gauges[name]
			fams = append(fams, report.MetricFamily{
				Name: g.name, Help: g.help, Type: "gauge",
				Samples: []report.Sample{{Value: g.fn()}},
			})
		case m.gaugeVecs[name] != nil:
			fams = append(fams, m.gaugeVecs[name].family())
		case m.hists[name] != nil:
			h := m.hists[name]
			fams = append(fams, hostHistFamily(h.name, h.help, nil, h.v))
		case m.histVecs[name] != nil:
			fams = append(fams, m.histVecs[name].families()...)
		}
	}
	return fams
}

// PromText renders the registry in the Prometheus text format.
func (m *HostMetrics) PromText() (string, error) {
	text, err := report.PromText(m.Families())
	if err != nil {
		return "", fmt.Errorf("obs: %w", err)
	}
	return text, nil
}

func (v *HostCounterVec) family() report.MetricFamily {
	v.mu.Lock()
	kids := make([]*vecChild, 0, len(v.kids))
	for _, kid := range v.kids {
		kids = append(kids, kid)
	}
	v.mu.Unlock()
	sort.Slice(kids, func(i, j int) bool { return labelKey(kids[i].values) < labelKey(kids[j].values) })
	f := report.MetricFamily{Name: v.name, Help: v.help, Type: "counter"}
	for _, kid := range kids {
		f.Samples = append(f.Samples, report.Sample{
			Labels: pairLabels(v.labels, kid.values),
			Value:  float64(kid.c.Value()),
		})
	}
	return f
}

func (v *HostGaugeVec) family() report.MetricFamily {
	v.mu.Lock()
	kids := make([]*gaugeChild, 0, len(v.kids))
	for _, kid := range v.kids {
		kids = append(kids, kid)
	}
	v.mu.Unlock()
	sort.Slice(kids, func(i, j int) bool { return labelKey(kids[i].values) < labelKey(kids[j].values) })
	f := report.MetricFamily{Name: v.name, Help: v.help, Type: "gauge"}
	for _, kid := range kids {
		f.Samples = append(f.Samples, report.Sample{
			Labels: pairLabels(v.labels, kid.values),
			Value:  kid.fn(),
		})
	}
	return f
}

// families renders the labeled histograms as one family: every child's
// cumulative buckets and stat samples carry its label values, so the text
// format stays free of duplicate family names.
func (v *HostHistVec) families() []report.MetricFamily {
	v.mu.Lock()
	kids := make([]*histChild, 0, len(v.kids))
	for _, kid := range v.kids {
		kids = append(kids, kid)
	}
	v.mu.Unlock()
	sort.Slice(kids, func(i, j int) bool { return labelKey(kids[i].values) < labelKey(kids[j].values) })
	f := report.MetricFamily{Name: v.name, Help: v.help, Type: "histogram"}
	for _, kid := range kids {
		child := hostHistFamily(v.name, v.help, pairLabels(v.labels, kid.values), &kid.h)
		f.Samples = append(f.Samples, child.Samples...)
	}
	return []report.MetricFamily{f}
}

func pairLabels(names, values []string) []report.Label {
	out := make([]report.Label, len(names))
	for i := range names {
		out[i] = report.Label{Name: names[i], Value: values[i]}
	}
	return out
}

// hostHistFamily renders a HostHist in the same shape obs uses for the
// simulator's ProfileHists: cumulative le-labeled buckets plus stat="sum"
// and stat="count" samples folded into one family.
func hostHistFamily(name, help string, base []report.Label, h *HostHist) report.MetricFamily {
	f := report.MetricFamily{Name: name, Help: help, Type: "histogram"}
	var cum int64
	for i := 0; i < HostHistBuckets; i++ {
		cum += h.buckets[i].Load()
		le := "+Inf"
		if ub := hostBucketUpperBound(i); ub >= 0 {
			le = strconv.FormatInt(ub, 10)
		}
		f.Samples = append(f.Samples, report.Sample{
			Labels: append(append([]report.Label(nil), base...), report.Label{Name: "le", Value: le}),
			Value:  float64(cum),
		})
	}
	f.Samples = append(f.Samples,
		report.Sample{Labels: append(append([]report.Label(nil), base...), report.Label{Name: "stat", Value: "sum"}), Value: float64(h.Sum())},
		report.Sample{Labels: append(append([]report.Label(nil), base...), report.Label{Name: "stat", Value: "count"}), Value: float64(h.Count())},
	)
	return f
}
