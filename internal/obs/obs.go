// Package obs is the parallel-safe observability layer for the SIMT
// simulator: per-SM sharded event counters and a bounded sampling tracer
// that keep working — without locks on the hot path and without forcing the
// sequential fallback — while Config.ParallelSMs runs every SM on its own
// host goroutine.
//
// The determinism story is inherited from the scheduler: each simulated SM's
// execution (its clock sequence, its instruction stream, its stats shard) is
// bit-identical across host execution modes, and within one SM exactly one
// goroutine runs at a time with channel handoffs providing happens-before.
// So state sharded by SM id needs no synchronization, and any deterministic
// merge of the shards — ascending SM id for counters, a stable sort for
// trace events — yields output that is bit-identical across runs and across
// ParallelSMs settings.
package obs

import (
	"fmt"
	"sort"
	"sync"

	"maxwarp/internal/report"
)

// shardPad pads each counter shard to 128 bytes — two cache lines — so
// per-SM increments from concurrent host goroutines do not false-share even
// through the adjacent-line spatial prefetcher, which pulls line pairs and
// can make 64-byte-spaced hot words contend on common x86 parts. The
// 8-goroutine contention microbenchmark (contention_test.go, numbers in
// EXPERIMENTS.md) measured parity with 64-byte padding on the dev host, so
// the extra line is cheap insurance for prefetch-pairing parts, not a
// measured local win.
const shardPad = 16 // 16 × int64 = 128 bytes

type counterShard struct {
	v [shardPad]int64
}

// Counter is one named event counter with per-SM shards plus a host shard
// for increments made outside any SM (e.g. between launches). Add is
// lock-free; Value merges shards in ascending id on read.
type Counter struct {
	name  string
	help  string
	shard []counterShard // index NumSMs is the host shard
}

// Add increments the counter's shard for the given SM. Safe to call from
// per-SM host goroutines concurrently; calls for the same SM must come from
// that SM's goroutine (which the simulator guarantees for kernel code).
func (c *Counter) Add(sm int, delta int64) {
	c.shard[c.index(sm)].v[0] += delta
}

// AddHost increments the host shard (for accounting done outside kernels,
// e.g. per-iteration counts on the launching goroutine).
func (c *Counter) AddHost(delta int64) {
	c.shard[len(c.shard)-1].v[0] += delta
}

// Value merges the shards (ascending SM id, host shard last) and returns the
// total. Sums are order-independent, so the total is deterministic however
// the shards were filled.
func (c *Counter) Value() int64 {
	var total int64
	for i := range c.shard {
		total += c.shard[i].v[0]
	}
	return total
}

// PerSM returns a copy of the per-SM shard values (the host shard is
// excluded).
func (c *Counter) PerSM() []int64 {
	out := make([]int64, len(c.shard)-1)
	for i := range out {
		out[i] = c.shard[i].v[0]
	}
	return out
}

// Name returns the counter's registered name.
func (c *Counter) Name() string { return c.name }

// Help returns the counter's description.
func (c *Counter) Help() string { return c.help }

// Reset zeroes every shard.
func (c *Counter) Reset() {
	for i := range c.shard {
		c.shard[i].v[0] = 0
	}
}

func (c *Counter) index(sm int) int {
	if sm < 0 || sm >= len(c.shard)-1 {
		return len(c.shard) - 1
	}
	return sm
}

// Metrics is a registry of sharded counters for one device (shard count =
// NumSMs). Registration takes a lock; the counters themselves are hot-path
// lock-free.
type Metrics struct {
	numSMs int

	mu       sync.Mutex
	counters []*Counter
	byName   map[string]*Counter
}

// NewMetrics creates a registry whose counters have numSMs shards (plus one
// host shard each).
func NewMetrics(numSMs int) *Metrics {
	if numSMs < 1 {
		numSMs = 1
	}
	return &Metrics{numSMs: numSMs, byName: make(map[string]*Counter)}
}

// Counter returns the registered counter with that name, creating it on
// first use. Registration is idempotent: the help string of the first
// registration wins.
func (m *Metrics) Counter(name, help string) *Counter {
	m.mu.Lock()
	defer m.mu.Unlock()
	if c, ok := m.byName[name]; ok {
		return c
	}
	if err := report.CheckMetricName(name); err != nil {
		panic(fmt.Sprintf("obs: %v", err))
	}
	c := &Counter{name: name, help: help, shard: make([]counterShard, m.numSMs+1)}
	m.byName[name] = c
	m.counters = append(m.counters, c)
	return c
}

// Lookup returns the counter with that name, or nil.
func (m *Metrics) Lookup(name string) *Counter {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.byName[name]
}

// NumSMs returns the shard count the registry was built for.
func (m *Metrics) NumSMs() int { return m.numSMs }

// Counters returns the registered counters sorted by name (a deterministic
// snapshot independent of registration order).
func (m *Metrics) Counters() []*Counter {
	m.mu.Lock()
	out := append([]*Counter(nil), m.counters...)
	m.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Reset zeroes every registered counter.
func (m *Metrics) Reset() {
	for _, c := range m.Counters() {
		c.Reset()
	}
}

// Values returns a name→total snapshot of every registered counter.
func (m *Metrics) Values() map[string]int64 {
	out := make(map[string]int64)
	for _, c := range m.Counters() {
		out[c.name] = c.Value()
	}
	return out
}
