package obs

import (
	"strings"
	"sync"
	"testing"

	"maxwarp/internal/report"
)

func TestHostCountersSurviveConcurrentHammering(t *testing.T) {
	m := NewHostMetrics()
	c := m.Counter("host_events_total", "events")
	vec := m.CounterVec("host_coded_total", "coded events", "code")
	const goroutines, per = 8, 1000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			code := "200"
			if id%2 == 1 {
				code = "429"
			}
			for j := 0; j < per; j++ {
				c.Inc()
				vec.With(code).Inc()
			}
		}(i)
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*per {
		t.Fatalf("counter = %d, want %d", got, goroutines*per)
	}
	if got := vec.Value("200") + vec.Value("429"); got != goroutines*per {
		t.Fatalf("vec total = %d, want %d", got, goroutines*per)
	}
}

func TestHostHistBucketsAndQuantiles(t *testing.T) {
	var h HostHist
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	if h.Count() != 1000 || h.Sum() != 500500 {
		t.Fatalf("count=%d sum=%d", h.Count(), h.Sum())
	}
	// Quantile returns a power-of-two upper bound for the rank.
	if q := h.Quantile(0.5); q < 500 || q > 1024 {
		t.Fatalf("p50 bound = %d, want in [500,1024]", q)
	}
	if q := h.Quantile(0.99); q < 990 || q > 1024 {
		t.Fatalf("p99 bound = %d, want in [990,1024]", q)
	}
	if q := h.Quantile(1.0); q != 1024 {
		t.Fatalf("p100 bound = %d, want 1024", q)
	}
}

func TestHostHistBucketIndexEdges(t *testing.T) {
	cases := map[int64]int{
		-5: 0, 0: 0, 1: 0,
		2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4,
		1 << 29: 29, 1<<62 + 1: HostHistBuckets - 1,
	}
	for v, want := range cases {
		if got := hostBucketIndex(v); got != want {
			t.Errorf("bucket(%d) = %d, want %d", v, got, want)
		}
	}
}

func TestHostFamiliesRenderAndParseBack(t *testing.T) {
	m := NewHostMetrics()
	m.Counter("srv_requests_total", "requests").Add(7)
	m.CounterVec("srv_shed_total", "sheds", "reason").With("queue").Add(3)
	m.CounterVec("srv_shed_total", "sheds", "reason").With("quota").Add(2)
	m.Gauge("srv_queue_depth", "queued requests", func() float64 { return 4 })
	m.HistogramVec("srv_latency_us", "latency", "algo").With("bfs").Observe(100)
	m.Histogram("srv_wait_us", "wait").Observe(9)

	text, err := m.PromText()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"srv_requests_total 7",
		`srv_shed_total{reason="queue"} 3`,
		`srv_shed_total{reason="quota"} 2`,
		"srv_queue_depth 4",
		`srv_latency_us{algo="bfs",le="128"}`,
		`srv_wait_us{stat="count"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	fams, err := report.ParsePromText(text)
	if err != nil {
		t.Fatalf("round-trip parse: %v", err)
	}
	if f := report.FamilyByName(fams, "srv_requests_total"); f == nil || f.Samples[0].Value != 7 {
		t.Fatalf("round-trip lost srv_requests_total: %+v", f)
	}
	if v, ok := report.SampleValue(fams, "srv_shed_total", report.Label{Name: "reason", Value: "queue"}); !ok || v != 3 {
		t.Fatalf("SampleValue(srv_shed_total, queue) = %v, %v", v, ok)
	}
}

func TestHostFamiliesDeterministicOrder(t *testing.T) {
	build := func(order []string) string {
		m := NewHostMetrics()
		for _, name := range order {
			m.Counter(name, "x").Inc()
		}
		text, err := m.PromText()
		if err != nil {
			t.Fatal(err)
		}
		return text
	}
	a := build([]string{"m_a_total", "m_b_total", "m_c_total"})
	b := build([]string{"m_c_total", "m_a_total", "m_b_total"})
	if a != b {
		t.Fatalf("registration order leaked into exposition:\n%s\nvs\n%s", a, b)
	}
}
