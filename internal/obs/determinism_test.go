package obs_test

import (
	"bytes"
	"reflect"
	"testing"

	"maxwarp/internal/gengraph"
	"maxwarp/internal/gpualgo"
	"maxwarp/internal/graph"
	"maxwarp/internal/obs"
	"maxwarp/internal/simt"
	"maxwarp/internal/traceview"
)

// This file holds the tentpole's acceptance tests: with the full
// observability stack attached (sampling tracer + sharded counters +
// profiling histograms), launches must keep the parallel fast path, and
// every observable output — merged trace, counter values, rendered
// Prometheus text, rendered Chrome JSON — must be bit-identical across
// repeated runs and across ParallelSMs settings. Run under -race by
// make race / make check.

type obsRun struct {
	fallback string
	events   []simt.TraceEvent
	counters map[string]int64
	prom     string
	chrome   []byte
}

// observedBFS runs a metrics- and tracer-instrumented BFS in the given host
// mode and captures every exported artifact.
func observedBFS(t *testing.T, g *graph.CSR, src graph.VertexID, mode int) obsRun {
	t.Helper()
	cfg := simt.DefaultConfig()
	cfg.NumSMs = 4
	cfg.MaxWarpsPerSM = 16
	cfg.MaxBlocksPerSM = 4
	cfg.MaxCycles = 50_000_000
	cfg.ParallelSMs = mode
	d, err := simt.NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tracer := obs.NewSamplingTracer(cfg.NumSMs, 32, 2048)
	d.SetTracer(tracer)
	d.SetProfiling(true)
	m := obs.NewMetrics(cfg.NumSMs)

	res, err := gpualgo.BFS(d, gpualgo.Upload(d, g), src,
		gpualgo.Options{K: 8, DeferThreshold: 16, Metrics: m})
	if err != nil {
		t.Fatalf("BFS (ParallelSMs=%d): %v", mode, err)
	}
	prom, err := obs.ExportPromText("maxwarp", &res.Stats, m, true)
	if err != nil {
		t.Fatal(err)
	}
	chrome, err := traceview.ChromeTrace(tracer.Events())
	if err != nil {
		t.Fatal(err)
	}
	return obsRun{
		fallback: res.Stats.SequentialFallback,
		events:   tracer.Events(),
		counters: m.Values(),
		prom:     prom,
		chrome:   chrome,
	}
}

// TestObservabilityDeterministicAcrossModes pins the determinism guarantee:
// sampled trace, counters, and both rendered exports are bit-identical for
// ParallelSMs ∈ {1, 2, 0} and across repeated runs, and sampled tracing
// never forces the sequential fallback.
func TestObservabilityDeterministicAcrossModes(t *testing.T) {
	g, err := gengraph.ChungLu(1200, 7, 2.2, 19)
	if err != nil {
		t.Fatal(err)
	}
	src := graph.LargestOutComponentSeed(g)

	ref := observedBFS(t, g, src, 1)
	if len(ref.events) == 0 {
		t.Fatal("reference run retained no trace events")
	}
	if ref.counters[gpualgo.MetricBFSEdges] == 0 {
		t.Fatal("reference run counted no BFS edges")
	}

	runs := []struct {
		name string
		mode int
	}{
		{"ParallelSMs=2", 2},
		{"ParallelSMs=0", 0},
		{"ParallelSMs=0/rerun", 0},
		{"ParallelSMs=1/rerun", 1},
	}
	for _, r := range runs {
		got := observedBFS(t, g, src, r.mode)
		if r.mode != 1 && got.fallback != "" {
			t.Errorf("%s: sampled tracing forced SequentialFallback=%q", r.name, got.fallback)
		}
		if !reflect.DeepEqual(got.events, ref.events) {
			t.Errorf("%s: merged trace events differ from sequential reference", r.name)
		}
		if !reflect.DeepEqual(got.counters, ref.counters) {
			t.Errorf("%s: counter values differ: %v vs %v", r.name, got.counters, ref.counters)
		}
		if got.prom != ref.prom {
			t.Errorf("%s: Prometheus text differs from reference", r.name)
		}
		if !bytes.Equal(got.chrome, ref.chrome) {
			t.Errorf("%s: Chrome trace JSON differs from reference", r.name)
		}
	}
}

// TestFullFidelityTracerStillFallsBack pins the other half of the contract:
// a tracer that is not parallel-safe (here, one lacking ParallelSafe) still
// forces the sequential event loop, so existing tooling stays correct.
type plainTracer struct{ n int }

func (p *plainTracer) Event(simt.TraceEvent) { p.n++ }

func TestFullFidelityTracerStillFallsBack(t *testing.T) {
	g, err := gengraph.Mesh2D(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	cfg := simt.DefaultConfig()
	cfg.NumSMs = 2
	// Explicit >1 (not 0): 0 resolves to NumCPU, which is 1 on a single-core
	// host and would make the launch sequential with no fallback to record.
	cfg.ParallelSMs = 2
	d, err := simt.NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr := &plainTracer{}
	d.SetTracer(tr)
	res, err := gpualgo.BFS(d, gpualgo.Upload(d, g), 0, gpualgo.Options{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SequentialFallback != "tracer" {
		t.Fatalf("SequentialFallback = %q, want \"tracer\"", res.Stats.SequentialFallback)
	}
	if tr.n == 0 {
		t.Fatal("plain tracer received no events")
	}
}
