package obs_test

import (
	"testing"

	"maxwarp/internal/gengraph"
	"maxwarp/internal/gpualgo"
	"maxwarp/internal/graph"
	"maxwarp/internal/obs"
	"maxwarp/internal/simt"
)

// TestObservabilityZeroCycleOverhead pins the overhead budget's simulated
// half exactly: counters, histograms, and the sampling tracer are host-side
// observers that charge no simulated cost, so an instrumented launch reports
// bit-identical Cycles (and stats) to a bare one. The <5% budget in
// DESIGN.md is therefore entirely a host wall-clock budget, measured by
// BenchmarkBFSObservability below.
func TestObservabilityZeroCycleOverhead(t *testing.T) {
	g, err := gengraph.ChungLu(1500, 8, 2.2, 7)
	if err != nil {
		t.Fatal(err)
	}
	src := graph.LargestOutComponentSeed(g)

	run := func(instrument bool) simt.LaunchStats {
		cfg := simt.DefaultConfig()
		d, err := simt.NewDevice(cfg)
		if err != nil {
			t.Fatal(err)
		}
		opts := gpualgo.Options{K: 8, DeferThreshold: 16}
		if instrument {
			d.SetTracer(obs.NewSamplingTracer(cfg.NumSMs, 64, 4096))
			d.SetProfiling(true)
			opts.Metrics = obs.NewMetrics(cfg.NumSMs)
		}
		res, err := gpualgo.BFS(d, gpualgo.Upload(d, g), src, opts)
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats
	}

	bare := run(false)
	full := run(true)
	if bare.Cycles != full.Cycles {
		t.Errorf("instrumentation changed simulated cycles: %d -> %d", bare.Cycles, full.Cycles)
	}
	if bare.Instructions != full.Instructions || bare.MemTxns != full.MemTxns {
		t.Errorf("instrumentation changed instruction accounting: %+v vs %+v", bare, full)
	}
}

// BenchmarkBFSObservability measures the host wall-clock cost of each layer
// of the observability stack on an E4-class BFS workload. Recorded numbers
// live in EXPERIMENTS.md; the budget is <5% at default sampling.
func BenchmarkBFSObservability(b *testing.B) {
	g, err := gengraph.ChungLu(1<<12, 8, 2.2, 42)
	if err != nil {
		b.Fatal(err)
	}
	src := graph.LargestOutComponentSeed(g)

	cases := []struct {
		name             string
		metrics, profile bool
		sampleEvery      int64
	}{
		{name: "bare"},
		{name: "counters", metrics: true},
		{name: "counters+hist", metrics: true, profile: true},
		{name: "trace-every-64", sampleEvery: 64},
		{name: "full-default", metrics: true, profile: true, sampleEvery: 64},
		{name: "trace-every-1", sampleEvery: 1},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := simt.DefaultConfig()
				d, err := simt.NewDevice(cfg)
				if err != nil {
					b.Fatal(err)
				}
				opts := gpualgo.Options{K: 8}
				if c.metrics {
					opts.Metrics = obs.NewMetrics(cfg.NumSMs)
				}
				if c.profile {
					d.SetProfiling(true)
				}
				if c.sampleEvery > 0 {
					d.SetTracer(obs.NewSamplingTracer(cfg.NumSMs, c.sampleEvery, 4096))
				}
				if _, err := gpualgo.BFS(d, gpualgo.Upload(d, g), src, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
