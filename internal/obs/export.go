package obs

import (
	"fmt"
	"strconv"

	"maxwarp/internal/report"
	"maxwarp/internal/simt"
)

// Exporters. The families produced here deliberately exclude the host-mode
// fields (ParallelSMs, SequentialFallback): everything exported is
// bit-identical across host execution modes, so metric output can be diffed
// across runs regardless of how the host scheduled the SMs.

// Families renders the registry's counters as Prometheus metric families:
// one counter family per registered name with the merged total, plus a
// per-SM breakdown labeled sm="<id>" when perSM is set.
func (m *Metrics) Families(perSM bool) []report.MetricFamily {
	var fams []report.MetricFamily
	for _, c := range m.Counters() {
		f := report.MetricFamily{
			Name:    c.Name(),
			Help:    c.Help(),
			Type:    "counter",
			Samples: []report.Sample{{Value: float64(c.Value())}},
		}
		if perSM {
			for sm, v := range c.PerSM() {
				f.Samples = append(f.Samples, report.Sample{
					Labels: []report.Label{{Name: "sm", Value: strconv.Itoa(sm)}},
					Value:  float64(v),
				})
			}
		}
		fams = append(fams, f)
	}
	return fams
}

// PromText renders the registry in the Prometheus text format.
func (m *Metrics) PromText(perSM bool) (string, error) {
	return report.PromText(m.Families(perSM))
}

// StatsFamilies renders a launch's merged counters (and its histograms when
// profiling was on) as Prometheus metric families under the given name
// prefix (e.g. "maxwarp"). Host-mode fields and the per-warp vectors are
// omitted.
func StatsFamilies(prefix string, s *simt.LaunchStats) []report.MetricFamily {
	c := func(name, help string, v int64) report.MetricFamily {
		return report.MetricFamily{
			Name: prefix + "_" + name, Help: help, Type: "counter",
			Samples: []report.Sample{{Value: float64(v)}},
		}
	}
	g := func(name, help string, v float64) report.MetricFamily {
		return report.MetricFamily{
			Name: prefix + "_" + name, Help: help, Type: "gauge",
			Samples: []report.Sample{{Value: v}},
		}
	}
	fams := []report.MetricFamily{
		c("cycles_total", "Simulated cycles.", s.Cycles),
		c("stall_cycles_total", "Cycles an SM had resident warps but none ready.", s.StallCycles),
		c("instructions_total", "Warp instructions issued.", s.Instructions),
		c("issue_slots_total", "Pipeline slots consumed.", s.IssueSlots),
		c("active_lane_ops_total", "Active lanes summed over instructions.", s.ActiveLaneOps),
		c("useful_lane_ops_total", "Non-redundant active lanes.", s.UsefulLaneOps),
		c("lane_slots_total", "Lane capacity offered by issued instructions.", s.LaneSlots),
		c("mem_ops_total", "Global-memory warp instructions.", s.MemOps),
		c("mem_txns_total", "Coalesced global-memory transactions.", s.MemTxns),
		c("mem_bytes_total", "Global-memory bytes moved.", s.MemBytes),
		c("atomic_ops_total", "Atomic warp instructions.", s.AtomicOps),
		c("atomic_serial_total", "Extra same-address atomic serialization steps.", s.AtomicSerial),
		c("cache_hits_total", "Read-only-cache hits.", s.CacheHits),
		c("cache_misses_total", "Read-only-cache misses.", s.CacheMisses),
		c("shared_ops_total", "Shared-memory warp instructions.", s.SharedOps),
		c("shared_bank_conflicts_total", "Shared-memory bank conflicts.", s.SharedBankConflicts),
		c("divergent_branches_total", "If points where both paths had active lanes.", s.DivergentBranches),
		c("barriers_total", "Block barrier releases.", s.Barriers),
		c("warps_launched_total", "Warps launched.", int64(s.WarpsLaunched)),
		c("blocks_launched_total", "Blocks launched.", int64(s.BlocksLaunched)),
		g("simd_utilization", "Active-lane occupancy in [0,1].", s.SIMDUtilization()),
		g("useful_utilization", "Non-redundant lane occupancy in [0,1].", s.UsefulUtilization()),
		g("txns_per_mem_op", "Transactions per global-memory instruction.", s.TxnsPerMemOp()),
		g("warp_imbalance_cv", "Coefficient of variation of per-warp busy cycles.", s.WarpImbalanceCV()),
	}
	if s.Profile != nil {
		p := s.Profile
		fams = append(fams,
			histFamily(prefix+"_instr_latency_cycles", "Result latency per issued instruction.", &p.InstrLatency),
			histFamily(prefix+"_mem_txns_per_op", "Coalesced transactions per global-memory instruction.", &p.MemTxns),
			histFamily(prefix+"_stall_wait_cycles", "Idle gap bridged when no warp was ready.", &p.StallWait),
			histFamily(prefix+"_warp_busy_cycles", "Per-warp busy cycles at completion.", &p.WarpBusy),
		)
	}
	return fams
}

// histFamily renders a ProfileHist as a Prometheus histogram: cumulative
// le-labeled buckets plus _sum and _count pseudo-samples folded into one
// family (our renderer keeps them as labeled samples of the same name, the
// shape scrape-side tooling expects for fixed-bucket histograms).
func histFamily(name, help string, h *simt.ProfileHist) report.MetricFamily {
	f := report.MetricFamily{Name: name, Help: help, Type: "histogram"}
	var cum int64
	for i := 0; i < simt.ProfileBuckets; i++ {
		cum += h.Buckets[i]
		le := "+Inf"
		if ub := simt.BucketUpperBound(i); ub >= 0 {
			le = strconv.FormatInt(ub, 10)
		}
		f.Samples = append(f.Samples, report.Sample{
			Labels: []report.Label{{Name: "le", Value: le}},
			Value:  float64(cum),
		})
	}
	f.Samples = append(f.Samples,
		report.Sample{Labels: []report.Label{{Name: "stat", Value: "sum"}}, Value: float64(h.Sum)},
		report.Sample{Labels: []report.Label{{Name: "stat", Value: "count"}}, Value: float64(h.Count)},
	)
	return f
}

// ExportPromText renders launch stats plus (optionally) a metrics registry
// as one Prometheus text document.
func ExportPromText(prefix string, s *simt.LaunchStats, m *Metrics, perSM bool) (string, error) {
	fams := StatsFamilies(prefix, s)
	if m != nil {
		fams = append(fams, m.Families(perSM)...)
	}
	text, err := report.PromText(fams)
	if err != nil {
		return "", fmt.Errorf("obs: %w", err)
	}
	return text, nil
}
