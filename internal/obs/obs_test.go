package obs

import (
	"reflect"
	"testing"
)

func TestCounterShardingAndMerge(t *testing.T) {
	m := NewMetrics(4)
	c := m.Counter("test_events_total", "test counter")
	c.Add(0, 5)
	c.Add(3, 7)
	c.Add(3, 1)
	c.AddHost(2)
	if got := c.Value(); got != 15 {
		t.Fatalf("Value() = %d, want 15", got)
	}
	want := []int64{5, 0, 0, 8}
	if got := c.PerSM(); !reflect.DeepEqual(got, want) {
		t.Fatalf("PerSM() = %v, want %v", got, want)
	}
}

func TestCounterOutOfRangeSMGoesToHostShard(t *testing.T) {
	m := NewMetrics(2)
	c := m.Counter("test_oob_total", "")
	c.Add(-1, 3)
	c.Add(99, 4)
	if got := c.Value(); got != 7 {
		t.Fatalf("Value() = %d, want 7", got)
	}
	// Neither landed in a real SM shard.
	if got := c.PerSM(); got[0] != 0 || got[1] != 0 {
		t.Fatalf("PerSM() = %v, want zeros", got)
	}
}

func TestMetricsIdempotentRegistration(t *testing.T) {
	m := NewMetrics(2)
	a := m.Counter("dup_total", "first")
	b := m.Counter("dup_total", "second help ignored")
	if a != b {
		t.Fatal("re-registering the same name must return the same counter")
	}
	if len(m.Counters()) != 1 {
		t.Fatalf("got %d counters, want 1", len(m.Counters()))
	}
}

func TestMetricsRejectsInvalidName(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on invalid metric name")
		}
	}()
	NewMetrics(1).Counter("0bad name", "")
}

func TestMetricsValuesAndReset(t *testing.T) {
	m := NewMetrics(2)
	m.Counter("a_total", "").Add(0, 1)
	m.Counter("b_total", "").Add(1, 2)
	want := map[string]int64{"a_total": 1, "b_total": 2}
	if got := m.Values(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Values() = %v, want %v", got, want)
	}
	m.Reset()
	for name, v := range m.Values() {
		if v != 0 {
			t.Fatalf("after Reset, %s = %d", name, v)
		}
	}
}
