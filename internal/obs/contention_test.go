package obs_test

import (
	"sync"
	"testing"

	"maxwarp/internal/obs"
)

// BenchmarkCounterShardContention hammers one Counter from eight host
// goroutines, each owning a distinct SM shard — the access pattern of a
// ParallelSMs=8 launch with instrumented kernels. With correctly padded
// shards the goroutines never share a cache line and the benchmark scales;
// with under-padded shards adjacent-slot false sharing shows up directly in
// ns/op. Recorded before/after numbers live in EXPERIMENTS.md.
func BenchmarkCounterShardContention(b *testing.B) {
	const sms = 8
	const opsPerGoroutine = 4096
	m := obs.NewMetrics(sms)
	c := m.Counter("contended_ops", "contention microbenchmark")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for sm := 0; sm < sms; sm++ {
			wg.Add(1)
			go func(sm int) {
				defer wg.Done()
				for k := 0; k < opsPerGoroutine; k++ {
					c.Add(sm, 1)
				}
			}(sm)
		}
		wg.Wait()
	}
	b.StopTimer()
	if got, want := c.Value(), int64(b.N)*sms*opsPerGoroutine; got != want {
		b.Fatalf("lost updates: got %d want %d", got, want)
	}
	b.ReportMetric(float64(b.N)*sms*opsPerGoroutine/b.Elapsed().Seconds(), "adds/s")
}

// BenchmarkCounterShardSingle is the uncontended baseline: one goroutine,
// one shard. The contended/single ratio isolates the cross-core cost.
func BenchmarkCounterShardSingle(b *testing.B) {
	m := obs.NewMetrics(8)
	c := m.Counter("single_ops", "uncontended microbenchmark")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Add(0, 1)
	}
}
