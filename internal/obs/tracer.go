package obs

import (
	"sort"

	"maxwarp/internal/simt"
)

// SamplingTracer is a bounded, parallel-safe tracer: it implements
// simt.ParallelTracer, so attaching it to a ParallelSMs>1 device does NOT
// force the sequential fallback. Events land in per-SM ring buffers with no
// locking (the scheduler guarantees one calling goroutine per SM), and
// TraceInstr events are sampled — every Every-th instruction per SM — to
// bound both memory and host overhead. Structural events (launch, block,
// barrier, warp-done) are always kept.
//
// Determinism: each SM's event stream is bit-identical across host modes, so
// per-shard counting samples the same instructions whatever the host
// interleaving. Events() defines a canonical merged order — stable sort by
// (Cycle, SM, per-SM sequence) — rather than reproducing the sequential
// loop's emission order, which interleaves SMs by their (non-monotone across
// SMs) clocks and is not a useful timeline anyway. The merged output is
// bit-identical across runs and across ParallelSMs settings.
type SamplingTracer struct {
	// Every samples one TraceInstr event in Every per SM (default 64;
	// 1 keeps every instruction). Set before the first launch.
	Every int64
	// CapPerSM bounds retained events per SM ring (default 4096).
	CapPerSM int

	shards []traceShard
	// launchEvents holds the SM=-1 launch-start/end events, which the
	// scheduler emits from the single launching goroutine.
	launchEvents []simt.TraceEvent
}

type traceShard struct {
	events  []sampledEvent
	next    int
	filled  bool
	seen    int64 // TraceInstr events observed (sampled or not)
	kept    int64 // events written into the ring
	sampled int64 // TraceInstr events kept
	seq     int64 // per-SM arrival sequence of kept events
	// padding to keep adjacent shards off one cache line
	_ [4]int64
}

// sampledEvent carries an event plus its per-SM arrival sequence, the
// tie-breaker that makes the merged order total.
type sampledEvent struct {
	simt.TraceEvent
	// Seq is the event's per-SM arrival index (over kept events).
	Seq int64
}

// NewSamplingTracer returns a tracer with numSMs shards.
func NewSamplingTracer(numSMs int, every int64, capPerSM int) *SamplingTracer {
	if numSMs < 1 {
		numSMs = 1
	}
	t := &SamplingTracer{Every: every, CapPerSM: capPerSM}
	t.shards = make([]traceShard, numSMs)
	return t
}

// ParallelSafe implements simt.ParallelTracer: events for different SMs may
// arrive concurrently.
func (t *SamplingTracer) ParallelSafe() bool { return true }

// Event implements simt.Tracer.
func (t *SamplingTracer) Event(e simt.TraceEvent) {
	if e.SM < 0 || e.SM >= len(t.shards) {
		// Launch start/end: emitted before goroutines fan out / after they
		// join, so plain appends are race-free.
		t.launchEvents = append(t.launchEvents, e)
		return
	}
	s := &t.shards[e.SM]
	if e.Kind == simt.TraceInstr {
		s.seen++
		every := t.Every
		if every <= 0 {
			every = 64
		}
		if (s.seen-1)%every != 0 {
			return
		}
		s.sampled++
	}
	if s.events == nil {
		c := t.CapPerSM
		if c <= 0 {
			c = 4096
		}
		s.events = make([]sampledEvent, c)
	}
	s.events[s.next] = sampledEvent{TraceEvent: e, Seq: s.seq}
	s.seq++
	s.kept++
	s.next++
	if s.next == len(s.events) {
		s.next = 0
		s.filled = true
	}
}

// InstrSeen returns how many TraceInstr events were observed across SMs
// (before sampling).
func (t *SamplingTracer) InstrSeen() int64 {
	var n int64
	for i := range t.shards {
		n += t.shards[i].seen
	}
	return n
}

// InstrSampled returns how many TraceInstr events passed the sampler.
func (t *SamplingTracer) InstrSampled() int64 {
	var n int64
	for i := range t.shards {
		n += t.shards[i].sampled
	}
	return n
}

// Kept returns how many events were written to rings (sampled TraceInstr
// plus structural events), including any later evicted.
func (t *SamplingTracer) Kept() int64 {
	n := int64(len(t.launchEvents))
	for i := range t.shards {
		n += t.shards[i].kept
	}
	return n
}

// Events returns the retained events in the canonical merged order: launch
// events first/last by kind, per-SM events stable-sorted by
// (Cycle, SM, per-SM sequence). The result is bit-identical across runs and
// ParallelSMs settings for a deterministic launch.
func (t *SamplingTracer) Events() []simt.TraceEvent {
	var merged []sampledEvent
	for i := range t.shards {
		s := &t.shards[i]
		if s.events == nil {
			continue
		}
		if s.filled {
			merged = append(merged, s.events[s.next:]...)
		}
		merged = append(merged, s.events[:s.next]...)
	}
	sort.SliceStable(merged, func(i, j int) bool {
		a, b := &merged[i], &merged[j]
		if a.Cycle != b.Cycle {
			return a.Cycle < b.Cycle
		}
		if a.SM != b.SM {
			return a.SM < b.SM
		}
		return a.Seq < b.Seq
	})
	out := make([]simt.TraceEvent, 0, len(merged)+len(t.launchEvents))
	// Launch-start events (and any other SM=-1 prologue) lead; launch-end
	// trails — preserving the scheduler's emission order for them.
	for _, e := range t.launchEvents {
		if e.Kind != simt.TraceLaunchEnd {
			out = append(out, e)
		}
	}
	for _, e := range merged {
		out = append(out, e.TraceEvent)
	}
	for _, e := range t.launchEvents {
		if e.Kind == simt.TraceLaunchEnd {
			out = append(out, e)
		}
	}
	return out
}

// Reset clears all shards for reuse across launches.
func (t *SamplingTracer) Reset() {
	for i := range t.shards {
		t.shards[i] = traceShard{}
	}
	t.launchEvents = nil
}
