package obs

import (
	"reflect"
	"testing"

	"maxwarp/internal/simt"
)

func instrEvent(sm int, cycle int64) simt.TraceEvent {
	return simt.TraceEvent{Kind: simt.TraceInstr, SM: sm, Cycle: cycle, Class: "alu", Warp: 0}
}

func TestSamplingCadencePerSM(t *testing.T) {
	tr := NewSamplingTracer(2, 4, 64)
	for i := int64(0); i < 40; i++ {
		tr.Event(instrEvent(0, i))
	}
	for i := int64(0); i < 7; i++ {
		tr.Event(instrEvent(1, i))
	}
	if got := tr.InstrSeen(); got != 47 {
		t.Fatalf("InstrSeen = %d, want 47", got)
	}
	// SM0: instructions 0,4,8,...,36 -> 10. SM1: 0,4 -> 2.
	if got := tr.InstrSampled(); got != 12 {
		t.Fatalf("InstrSampled = %d, want 12", got)
	}
	// The sampler is a per-SM modulus, not a shared one: both SMs keep their
	// first instruction regardless of arrival interleaving.
	events := tr.Events()
	bySM := map[int]int64{}
	for _, e := range events {
		if _, ok := bySM[e.SM]; !ok {
			bySM[e.SM] = e.Cycle
		}
	}
	if bySM[0] != 0 || bySM[1] != 0 {
		t.Fatalf("first sampled cycle per SM = %v, want 0 for both", bySM)
	}
}

func TestStructuralEventsBypassSampler(t *testing.T) {
	tr := NewSamplingTracer(1, 1000, 64)
	tr.Event(instrEvent(0, 1))
	tr.Event(instrEvent(0, 2)) // dropped by sampler
	tr.Event(simt.TraceEvent{Kind: simt.TraceBarrierRelease, SM: 0, Cycle: 3, Warp: -1})
	tr.Event(simt.TraceEvent{Kind: simt.TraceWarpDone, SM: 0, Cycle: 4})
	kinds := []simt.TraceKind{}
	for _, e := range tr.Events() {
		kinds = append(kinds, e.Kind)
	}
	want := []simt.TraceKind{simt.TraceInstr, simt.TraceBarrierRelease, simt.TraceWarpDone}
	if !reflect.DeepEqual(kinds, want) {
		t.Fatalf("kinds = %v, want %v", kinds, want)
	}
}

func TestRingEvictsOldestPerSM(t *testing.T) {
	tr := NewSamplingTracer(1, 1, 4)
	for i := int64(0); i < 10; i++ {
		tr.Event(instrEvent(0, i))
	}
	events := tr.Events()
	if len(events) != 4 {
		t.Fatalf("retained %d events, want 4", len(events))
	}
	for i, e := range events {
		if want := int64(6 + i); e.Cycle != want {
			t.Fatalf("event %d cycle = %d, want %d (last 4 retained in order)", i, e.Cycle, want)
		}
	}
	if got := tr.Kept(); got != 10 {
		t.Fatalf("Kept = %d, want 10 (counts evicted writes too)", got)
	}
}

func TestEventsMergeOrderIsCanonical(t *testing.T) {
	// Feed two SMs with interleaved arrival but overlapping cycles: merged
	// order must be (Cycle, SM, seq), independent of arrival order.
	build := func(arrival []simt.TraceEvent) []simt.TraceEvent {
		tr := NewSamplingTracer(2, 1, 16)
		for _, e := range arrival {
			tr.Event(e)
		}
		return tr.Events()
	}
	a := []simt.TraceEvent{instrEvent(0, 5), instrEvent(1, 3), instrEvent(0, 7), instrEvent(1, 5)}
	b := []simt.TraceEvent{instrEvent(1, 3), instrEvent(1, 5), instrEvent(0, 5), instrEvent(0, 7)}
	if !reflect.DeepEqual(build(a), build(b)) {
		t.Fatal("merged order depends on cross-SM arrival interleaving")
	}
	got := build(a)
	wantCycles := []int64{3, 5, 5, 7}
	wantSMs := []int{1, 0, 1, 0}
	for i, e := range got {
		if e.Cycle != wantCycles[i] || e.SM != wantSMs[i] {
			t.Fatalf("event %d = (cycle %d, sm %d), want (%d, %d)",
				i, e.Cycle, e.SM, wantCycles[i], wantSMs[i])
		}
	}
}

func TestLaunchEventsLeadAndTrail(t *testing.T) {
	tr := NewSamplingTracer(1, 1, 16)
	tr.Event(simt.TraceEvent{Kind: simt.TraceLaunchStart, SM: -1, Cycle: 0})
	tr.Event(instrEvent(0, 1))
	tr.Event(simt.TraceEvent{Kind: simt.TraceLaunchEnd, SM: -1, Cycle: 2})
	events := tr.Events()
	if len(events) != 3 {
		t.Fatalf("got %d events, want 3", len(events))
	}
	if events[0].Kind != simt.TraceLaunchStart || events[2].Kind != simt.TraceLaunchEnd {
		t.Fatalf("launch events misplaced: %v", events)
	}
}

func TestTracerReset(t *testing.T) {
	tr := NewSamplingTracer(1, 1, 16)
	tr.Event(simt.TraceEvent{Kind: simt.TraceLaunchStart, SM: -1})
	tr.Event(instrEvent(0, 1))
	tr.Reset()
	if n := len(tr.Events()); n != 0 {
		t.Fatalf("after Reset, %d events retained", n)
	}
	if tr.InstrSeen() != 0 || tr.Kept() != 0 {
		t.Fatal("after Reset, counters nonzero")
	}
}
