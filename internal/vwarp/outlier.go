package vwarp

import (
	"fmt"

	"maxwarp/internal/simt"
)

// OutlierQueue implements the paper's "deferring outliers" technique: during
// the main pass, tasks whose work exceeds a threshold are not processed
// inline (where they would stall their virtual warp); instead their ids are
// appended to this global queue with an atomic counter, and a follow-up pass
// processes them with a full warp (or more) per task.
type OutlierQueue struct {
	// Items holds deferred task ids.
	Items *simt.BufI32
	// Count is a single-cell buffer holding the number of deferred items.
	Count *simt.BufI32
}

// NewOutlierQueue allocates a queue with room for capacity deferred tasks.
func NewOutlierQueue(d *simt.Device, name string, capacity int) *OutlierQueue {
	if capacity < 1 {
		capacity = 1
	}
	return &OutlierQueue{
		Items: d.AllocI32(name+".items", capacity),
		Count: d.AllocI32(name+".count", 1),
	}
}

// Reset clears the queue (host side, between launches).
func (q *OutlierQueue) Reset() { q.Count.Data()[0] = 0 }

// Len returns the number of deferred tasks (host side, after a launch).
func (q *OutlierQueue) Len() int {
	n := int(q.Count.Data()[0])
	if n > q.Items.Len() {
		n = q.Items.Len() // the queue saturated; excess appends were dropped
	}
	return n
}

// Defer appends each active group's task for which pred holds. It returns
// nothing device-side; the caller's SISD code should simply skip deferred
// tasks. Appends beyond capacity are dropped (the caller sizes the queue for
// the worst case, typically numTasks).
func (t *Tasks) Defer(q *OutlierQueue, pred func(g int) bool) {
	t.leaderLanes()
	t.leaderUser = pred
	t.deferQ = q
	t.W.If(t.leaderFn, t.deferBodyFn, nil)
}

// ForEachDeferred processes the queue's tasks with one virtual warp of width
// k per task (typically k = the full warp width, maximizing parallelism on
// the heavy tasks). numDeferred is read host-side via Len() after the main
// pass. The task ids are fetched through the queue indirection, then body
// runs exactly as in ForEachStatic.
func ForEachDeferred(w *simt.WarpCtx, k int, q *OutlierQueue, numDeferred int32, body func(t *Tasks)) {
	if numDeferred < 0 {
		panic(fmt.Sprintf("vwarp: negative deferred count %d", numDeferred))
	}
	ForEachStatic(w, k, numDeferred, func(t *Tasks) {
		// t.Task currently holds queue slots; replace with the deferred ids.
		t.LoadI32Grouped(q.Items, t.Task, t.Task)
		body(t)
	})
}
