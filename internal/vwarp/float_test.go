package vwarp

import (
	"math"
	"testing"

	"maxwarp/internal/simt"
)

func TestMaskNarrowsToPredicateGroups(t *testing.T) {
	d := testDevice(t)
	const numTasks = 32
	out := d.AllocI32("out", numTasks)
	out.Fill(-1)
	kernel := func(w *simt.WarpCtx) {
		ForEachStatic(w, 4, numTasks, func(ts *Tasks) {
			vals := make([]int32, ts.Groups)
			ts.SISD(1, func(g int) { vals[g] = ts.Task[g] * 2 })
			ts.Mask(func(g int) bool { return ts.Task[g]%3 == 0 }, func() {
				ts.StoreI32Grouped(out, ts.Task, vals, nil)
			})
		})
	}
	if _, err := d.Launch(simt.Grid1D(numTasks*4, 64), kernel); err != nil {
		t.Fatal(err)
	}
	for i, v := range out.Data() {
		want := int32(-1)
		if i%3 == 0 {
			want = int32(i * 2)
		}
		if v != want {
			t.Fatalf("out[%d] = %d, want %d", i, v, want)
		}
	}
}

func TestStoreF32GroupedAndReduceAddF32(t *testing.T) {
	d := testDevice(t)
	const numTasks = 16
	out := d.AllocF32("out", numTasks)
	kernel := func(w *simt.WarpCtx) {
		ForEachStatic(w, 8, numTasks, func(ts *Tasks) {
			// Each lane contributes its lane-in-group index; group sum of
			// 0..7 = 28, scaled by the task id via SISD.
			contrib := w.VecF32()
			w.Apply(1, func(lane int) { contrib[lane] = float32(ts.LaneInGroup(lane)) })
			sums := make([]float32, ts.Groups)
			ts.ReduceAddF32(contrib, sums)
			vals := make([]float32, ts.Groups)
			ts.SISD(1, func(g int) { vals[g] = sums[g] * float32(ts.Task[g]) })
			ts.StoreF32Grouped(out, ts.Task, vals, func(g int) bool { return ts.Task[g] != 3 })
		})
	}
	if _, err := d.Launch(simt.Grid1D(numTasks*8, 64), kernel); err != nil {
		t.Fatal(err)
	}
	for i, v := range out.Data() {
		want := float32(28 * i)
		if i == 3 {
			want = 0 // excluded by predicate
		}
		if math.Abs(float64(v-want)) > 1e-6 {
			t.Fatalf("out[%d] = %f, want %f", i, v, want)
		}
	}
}

func TestReduceAddI32Grouped(t *testing.T) {
	d := testDevice(t)
	out := d.AllocI32("out", 8)
	kernel := func(w *simt.WarpCtx) {
		ForEachStatic(w, 4, 8, func(ts *Tasks) {
			ones := w.ConstI32(1)
			counts := make([]int32, ts.Groups)
			ts.ReduceAddI32(ones, counts)
			ts.StoreI32Grouped(out, ts.Task, counts, nil)
		})
	}
	if _, err := d.Launch(simt.Grid1D(32, 32), kernel); err != nil {
		t.Fatal(err)
	}
	for i, v := range out.Data() {
		if v != 4 { // K lanes each contributed 1
			t.Fatalf("out[%d] = %d, want 4", i, v)
		}
	}
}

func TestNewOutlierQueueMinimumCapacity(t *testing.T) {
	d := testDevice(t)
	q := NewOutlierQueue(d, "q", 0)
	if q.Items.Len() != 1 {
		t.Fatalf("zero-capacity queue should clamp to 1, got %d", q.Items.Len())
	}
}
