package vwarp

import (
	"testing"

	"maxwarp/internal/simt"
)

func testDevice(t *testing.T) *simt.Device {
	t.Helper()
	cfg := simt.DefaultConfig()
	cfg.NumSMs = 4
	cfg.MaxWarpsPerSM = 8
	cfg.MaxBlocksPerSM = 4
	d, err := simt.NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestForEachStaticCoversAllTasksOnce checks every task is visited exactly
// once for a range of K, grid shapes, and task counts (including tails).
func TestForEachStaticCoversAllTasksOnce(t *testing.T) {
	for _, k := range []int{1, 2, 4, 8, 16, 32} {
		for _, numTasks := range []int32{0, 1, 31, 32, 33, 100, 1000} {
			d := testDevice(t)
			seen := d.AllocI32("seen", int(numTasks)+1)
			kernel := func(w *simt.WarpCtx) {
				ForEachStatic(w, k, numTasks, func(ts *Tasks) {
					one := make([]int32, ts.Groups)
					for g := range one {
						one[g] = 1
					}
					ts.AtomicAddGrouped(seen, ts.Task, one, nil, nil)
				})
			}
			if _, err := d.Launch(simt.Grid1D(256, 64), kernel); err != nil {
				t.Fatalf("k=%d n=%d: %v", k, numTasks, err)
			}
			for i := int32(0); i < numTasks; i++ {
				if got := seen.Data()[i]; got != 1 {
					t.Fatalf("k=%d n=%d: task %d visited %d times", k, numTasks, i, got)
				}
			}
		}
	}
}

func TestForEachDynamicCoversAllTasksOnce(t *testing.T) {
	for _, k := range []int{1, 4, 32} {
		for _, chunk := range []int32{1, 3, 8, 64} {
			const numTasks = 500
			d := testDevice(t)
			seen := d.AllocI32("seen", numTasks)
			counter := d.AllocI32("counter", 1)
			kernel := func(w *simt.WarpCtx) {
				ForEachDynamic(w, k, numTasks, counter, chunk, func(ts *Tasks) {
					one := make([]int32, ts.Groups)
					for g := range one {
						one[g] = 1
					}
					ts.AtomicAddGrouped(seen, ts.Task, one, nil, nil)
				})
			}
			if _, err := d.Launch(simt.Grid1D(128, 64), kernel); err != nil {
				t.Fatalf("k=%d chunk=%d: %v", k, chunk, err)
			}
			for i := 0; i < numTasks; i++ {
				if got := seen.Data()[i]; got != 1 {
					t.Fatalf("k=%d chunk=%d: task %d visited %d times", k, chunk, i, got)
				}
			}
		}
	}
}

func TestSISDRunsOncePerGroup(t *testing.T) {
	d := testDevice(t)
	const numTasks = 64
	out := d.AllocI32("out", numTasks)
	kernel := func(w *simt.WarpCtx) {
		ForEachStatic(w, 8, numTasks, func(ts *Tasks) {
			vals := make([]int32, ts.Groups)
			ts.SISD(1, func(g int) { vals[g] = ts.Task[g] * 10 })
			ts.StoreI32Grouped(out, ts.Task, vals, nil)
		})
	}
	if _, err := d.Launch(simt.Grid1D(64, 64), kernel); err != nil {
		t.Fatal(err)
	}
	for i, v := range out.Data() {
		if v != int32(i*10) {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*10)
		}
	}
}

func TestLoadI32Grouped(t *testing.T) {
	d := testDevice(t)
	const numTasks = 48
	src := d.AllocI32("src", numTasks)
	for i := range src.Data() {
		src.Data()[i] = int32(i * 7)
	}
	out := d.AllocI32("out", numTasks)
	kernel := func(w *simt.WarpCtx) {
		ForEachStatic(w, 4, numTasks, func(ts *Tasks) {
			got := make([]int32, ts.Groups)
			ts.LoadI32Grouped(src, ts.Task, got)
			ts.StoreI32Grouped(out, ts.Task, got, nil)
		})
	}
	if _, err := d.Launch(simt.Grid1D(numTasks, 32), kernel); err != nil {
		t.Fatal(err)
	}
	for i, v := range out.Data() {
		if v != int32(i*7) {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*7)
		}
	}
}

func TestSIMDRangeStridesAllElements(t *testing.T) {
	// Tasks own variable-length segments of a data array; the SIMD phase must
	// touch each element exactly once (verified with atomic increments).
	d := testDevice(t)
	segLens := []int32{0, 1, 5, 16, 33, 7, 64, 2}
	starts := make([]int32, len(segLens))
	total := int32(0)
	for i, ln := range segLens {
		starts[i] = total
		total += ln
	}
	startBuf := d.UploadI32("starts", starts)
	lenBuf := d.UploadI32("lens", segLens)
	touched := d.AllocI32("touched", int(total))
	kernel := func(w *simt.WarpCtx) {
		ForEachStatic(w, 8, int32(len(segLens)), func(ts *Tasks) {
			start := make([]int32, ts.Groups)
			ln := make([]int32, ts.Groups)
			end := make([]int32, ts.Groups)
			ts.LoadI32Grouped(startBuf, ts.Task, start)
			ts.LoadI32Grouped(lenBuf, ts.Task, ln)
			ts.SISD(1, func(g int) { end[g] = start[g] + ln[g] })
			ts.SIMDRange(start, end, func(j []int32) {
				one := ts.W.ConstI32(1)
				ts.W.AtomicAddI32(touched, j, one, nil)
			})
		})
	}
	if _, err := d.Launch(simt.Grid1D(64, 32), kernel); err != nil {
		t.Fatal(err)
	}
	for i, v := range touched.Data() {
		if v != 1 {
			t.Fatalf("element %d touched %d times", i, v)
		}
	}
}

func TestStoreI32GroupedPredicate(t *testing.T) {
	d := testDevice(t)
	const numTasks = 32
	out := d.AllocI32("out", numTasks)
	out.Fill(-1)
	kernel := func(w *simt.WarpCtx) {
		ForEachStatic(w, 4, numTasks, func(ts *Tasks) {
			vals := make([]int32, ts.Groups)
			ts.SISD(1, func(g int) { vals[g] = 99 })
			ts.StoreI32Grouped(out, ts.Task, vals, func(g int) bool { return ts.Task[g]%2 == 0 })
		})
	}
	if _, err := d.Launch(simt.Grid1D(numTasks, 32), kernel); err != nil {
		t.Fatal(err)
	}
	for i, v := range out.Data() {
		want := int32(-1)
		if i%2 == 0 {
			want = 99
		}
		if v != want {
			t.Fatalf("out[%d] = %d, want %d", i, v, want)
		}
	}
}

func TestAtomicAddGroupedOldValues(t *testing.T) {
	d := testDevice(t)
	counter := d.AllocI32("counter", 1)
	slots := d.AllocI32("slots", 64)
	slots.Fill(-1)
	kernel := func(w *simt.WarpCtx) {
		ForEachStatic(w, 8, 64, func(ts *Tasks) {
			zero := make([]int32, ts.Groups)
			one := make([]int32, ts.Groups)
			old := make([]int32, ts.Groups)
			for g := range one {
				one[g] = 1
			}
			ts.AtomicAddGrouped(counter, zero, one, old, nil)
			ts.StoreI32Grouped(slots, ts.Task, old, nil)
		})
	}
	if _, err := d.Launch(simt.Grid1D(64, 64), kernel); err != nil {
		t.Fatal(err)
	}
	if counter.Data()[0] != 64 {
		t.Fatalf("counter = %d, want 64", counter.Data()[0])
	}
	// Every task got a distinct slot in [0,64).
	seen := make([]bool, 64)
	for i, s := range slots.Data() {
		if s < 0 || s >= 64 || seen[s] {
			t.Fatalf("task %d got bad/duplicate slot %d", i, s)
		}
		seen[s] = true
	}
}

func TestDeferAndProcessDeferred(t *testing.T) {
	d := testDevice(t)
	const numTasks = 128
	work := d.AllocI32("work", numTasks) // per-task work amount
	for i := range work.Data() {
		work.Data()[i] = 1
	}
	// Heavy outliers.
	work.Data()[5] = 100
	work.Data()[77] = 200
	work.Data()[99] = 150
	q := NewOutlierQueue(d, "q", numTasks)
	processed := d.AllocI32("processed", numTasks)

	mainPass := func(w *simt.WarpCtx) {
		ForEachStatic(w, 4, numTasks, func(ts *Tasks) {
			amt := make([]int32, ts.Groups)
			ts.LoadI32Grouped(work, ts.Task, amt)
			heavy := func(g int) bool { return amt[g] > 50 }
			ts.Defer(q, heavy)
			vals := make([]int32, ts.Groups)
			ts.SISD(1, func(g int) { vals[g] = 1 })
			ts.StoreI32Grouped(processed, ts.Task, vals, func(g int) bool { return !heavy(g) })
		})
	}
	if _, err := d.Launch(simt.Grid1D(numTasks, 64), mainPass); err != nil {
		t.Fatal(err)
	}
	if q.Len() != 3 {
		t.Fatalf("deferred %d tasks, want 3", q.Len())
	}
	deferredPass := func(w *simt.WarpCtx) {
		ForEachDeferred(w, w.Width(), q, int32(q.Len()), func(ts *Tasks) {
			vals := make([]int32, ts.Groups)
			ts.SISD(1, func(g int) { vals[g] = 2 })
			ts.StoreI32Grouped(processed, ts.Task, vals, nil)
		})
	}
	if _, err := d.Launch(simt.Grid1D(q.Len()*32, 64), deferredPass); err != nil {
		t.Fatal(err)
	}
	for i, v := range processed.Data() {
		want := int32(1)
		if i == 5 || i == 77 || i == 99 {
			want = 2
		}
		if v != want {
			t.Fatalf("processed[%d] = %d, want %d", i, v, want)
		}
	}
	q.Reset()
	if q.Len() != 0 {
		t.Fatal("Reset did not clear queue")
	}
}

func TestSmallerKHasHigherUsefulUtilizationOnUniformWork(t *testing.T) {
	// With uniform tiny segments (length 2), small K wastes fewer lanes:
	// useful utilization must decrease monotonically-ish as K grows.
	lens := make([]int32, 256)
	for i := range lens {
		lens[i] = 2
	}
	var prev float64 = -1
	for _, k := range []int{2, 8, 32} {
		d := testDevice(t)
		lenBuf := d.UploadI32("lens", lens)
		_ = d.AllocI32("sink", len(lens))
		kernel := func(w *simt.WarpCtx) {
			ForEachStatic(w, k, int32(len(lens)), func(ts *Tasks) {
				ln := make([]int32, ts.Groups)
				ts.LoadI32Grouped(lenBuf, ts.Task, ln)
				start := make([]int32, ts.Groups)
				ts.SISD(1, func(g int) { start[g] = 0 })
				ts.SIMDRange(start, ln, func(j []int32) {
					ts.W.Apply(1, func(lane int) {})
				})
			})
		}
		stats, err := d.Launch(simt.Grid1D(256, 64), kernel)
		if err != nil {
			t.Fatal(err)
		}
		u := stats.UsefulUtilization()
		if prev >= 0 && u > prev+0.05 {
			t.Fatalf("useful utilization rose from %.3f to %.3f as K grew to %d", prev, u, k)
		}
		prev = u
	}
}

func TestInvalidKPanicsAsLaunchError(t *testing.T) {
	d := testDevice(t)
	kernel := func(w *simt.WarpCtx) {
		ForEachStatic(w, 3, 10, func(ts *Tasks) {}) // 3 does not divide 32
	}
	if _, err := d.Launch(simt.Grid1D(32, 32), kernel); err == nil {
		t.Fatal("invalid K accepted")
	}
	kernel2 := func(w *simt.WarpCtx) {
		counter := 0
		_ = counter
		ForEachDynamic(w, 4, 10, nil, 0, func(ts *Tasks) {})
	}
	if _, err := d.Launch(simt.Grid1D(32, 32), kernel2); err == nil {
		t.Fatal("zero chunk accepted")
	}
}

func TestGroupHelpers(t *testing.T) {
	d := testDevice(t)
	kernel := func(w *simt.WarpCtx) {
		ForEachStatic(w, 8, 4, func(ts *Tasks) {
			if ts.Group(9) != 1 || ts.LaneInGroup(9) != 1 {
				panic("group math wrong")
			}
			if ts.Groups != 4 {
				panic("groups wrong")
			}
		})
	}
	if _, err := d.Launch(simt.Grid1D(32, 32), kernel); err != nil {
		t.Fatal(err)
	}
}

func TestOutlierQueueSaturation(t *testing.T) {
	// Capacity 2, 5 outliers: Len clamps to capacity, no crash, no OOB.
	d := testDevice(t)
	q := NewOutlierQueue(d, "q", 2)
	kernel := func(w *simt.WarpCtx) {
		ForEachStatic(w, 4, 5, func(ts *Tasks) {
			ts.Defer(q, func(g int) bool { return true })
		})
	}
	if _, err := d.Launch(simt.Grid1D(64, 64), kernel); err != nil {
		t.Fatal(err)
	}
	if q.Len() != 2 {
		t.Fatalf("saturated queue Len = %d, want 2", q.Len())
	}
}

func TestForEachStaticBlockedCoversAllTasksOnce(t *testing.T) {
	for _, k := range []int{1, 4, 32} {
		for _, numTasks := range []int32{0, 1, 33, 500, 1000} {
			d := testDevice(t)
			seen := d.AllocI32("seen", int(numTasks)+1)
			kernel := func(w *simt.WarpCtx) {
				ForEachStaticBlocked(w, k, numTasks, func(ts *Tasks) {
					one := make([]int32, ts.Groups)
					for g := range one {
						one[g] = 1
					}
					ts.AtomicAddGrouped(seen, ts.Task, one, nil, nil)
				})
			}
			if _, err := d.Launch(simt.Grid1D(256, 64), kernel); err != nil {
				t.Fatalf("k=%d n=%d: %v", k, numTasks, err)
			}
			for i := int32(0); i < numTasks; i++ {
				if got := seen.Data()[i]; got != 1 {
					t.Fatalf("k=%d n=%d: task %d visited %d times", k, numTasks, i, got)
				}
			}
		}
	}
}
