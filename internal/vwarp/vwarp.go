// Package vwarp implements the paper's virtual warp-centric programming
// method (Hong et al., PPoPP 2011) on top of the simt substrate.
//
// A physical warp of width W is divided into W/K virtual warps of width K.
// Each virtual warp owns one task (typically a vertex) at a time and
// processes it in two phases:
//
//   - a replicated (SISD) phase, where every lane of the virtual warp
//     executes the same scalar instruction stream (Tasks.SISD,
//     Tasks.LoadI32Grouped), paying no divergence but wasting K-1 of every
//     K lanes; and
//   - a SIMD phase (Tasks.SIMDRange), where the K lanes cooperatively
//     stride over the task's data (an adjacency list), so a heavy task is
//     spread across lanes instead of serializing one lane.
//
// K is the trade-off knob: K=1 degenerates to the classic thread-per-task
// mapping (maximum ALU use, maximum imbalance), K=W is full warp-per-task
// (minimum imbalance, most replication waste).
//
// The package also provides the paper's two auxiliary techniques: dynamic
// workload distribution via a global task counter (ForEachDynamic) and
// deferring outliers to a global queue (OutlierQueue) for a follow-up pass
// at maximum parallelism.
package vwarp

import (
	"fmt"

	"maxwarp/internal/simt"
)

// Tasks is the per-round view a body callback receives: each virtual-warp
// group g of width K holds task Task[g] (or -1 when the group is idle this
// round). All per-group slices have length Groups.
type Tasks struct {
	// W is the underlying physical-warp context; kernels may use it directly
	// for per-lane (SIMD-phase) operations.
	W *simt.WarpCtx
	// K is the virtual warp width.
	K int
	// Groups is W.Width()/K, the number of virtual warps per physical warp.
	Groups int
	// Task holds each group's current task id, -1 when idle.
	Task []int32

	laneIdx []int32 // scratch: per-lane replicated index vector
	laneVal []int32 // scratch: per-lane value vector
}

func newTasks(w *simt.WarpCtx, k int) *Tasks {
	width := w.Width()
	if k < 1 || k > width || width%k != 0 {
		panic(fmt.Sprintf("vwarp: virtual warp width %d invalid for physical width %d", k, width))
	}
	return &Tasks{
		W:       w,
		K:       k,
		Groups:  width / k,
		Task:    make([]int32, width/k),
		laneIdx: make([]int32, width),
		laneVal: make([]int32, width),
	}
}

// Group returns the virtual-warp group a lane belongs to.
func (t *Tasks) Group(lane int) int { return lane / t.K }

// LaneInGroup returns a lane's index within its virtual warp.
func (t *Tasks) LaneInGroup(lane int) int { return lane % t.K }

// Valid reports whether group g has a task this round.
func (t *Tasks) Valid(g int) bool { return t.Task[g] >= 0 }

// SISD runs f once per active virtual warp, charged as `instrs` replicated
// warp instructions (every hardware lane busy, one useful result per group).
func (t *Tasks) SISD(instrs int, f func(g int)) {
	t.W.ApplyReplicated(instrs, t.K, func(g int) {
		if t.Valid(g) {
			f(g)
		}
	})
}

// LoadI32Grouped performs the replicated-phase load dst[g] = buf[idx[g]] for
// every active group. All K lanes of a group issue the same address, exactly
// like replicated scalar code on hardware; coalescing collapses them into
// one transaction per touched segment.
func (t *Tasks) LoadI32Grouped(buf *simt.BufI32, idx, dst []int32) {
	w := t.W
	t.replicateI32(idx, t.laneIdx)
	w.LoadI32Replicated(t.K, buf, t.laneIdx, t.laneVal)
	for g := 0; g < t.Groups; g++ {
		if lane := t.firstActiveLane(g); lane >= 0 {
			dst[g] = t.laneVal[lane]
		}
	}
}

// StoreI32Grouped performs the replicated-phase store buf[idx[g]] = val[g]
// for every active group for which pred holds (nil pred = all). Only the
// group leader lane writes, like "if (lane_of_vw == 0)" in CUDA code.
func (t *Tasks) StoreI32Grouped(buf *simt.BufI32, idx, val []int32, pred func(g int) bool) {
	w := t.W
	leaders := t.leaderLanes()
	t.replicateI32Pair(idx, val, t.laneIdx, t.laneVal)
	w.If(func(lane int) bool {
		g := t.Group(lane)
		return leaders[lane] && t.Valid(g) && (pred == nil || pred(g))
	}, func() {
		w.StoreI32(buf, t.laneIdx, t.laneVal)
	}, nil)
}

// AtomicAddGrouped atomically adds delta[g] to buf[idx[g]] once per active
// group for which pred holds, placing the previous value in old[g] (old may
// be nil). One lane per group performs the atomic, as hardware code would.
func (t *Tasks) AtomicAddGrouped(buf *simt.BufI32, idx, delta, old []int32, pred func(g int) bool) {
	w := t.W
	leaders := t.leaderLanes()
	laneOld := t.W.VecI32()
	t.replicateI32Pair(idx, delta, t.laneIdx, t.laneVal)
	w.If(func(lane int) bool {
		g := t.Group(lane)
		return leaders[lane] && t.Valid(g) && (pred == nil || pred(g))
	}, func() {
		w.AtomicAddI32(buf, t.laneIdx, t.laneVal, laneOld)
	}, nil)
	if old != nil {
		for g := 0; g < t.Groups; g++ {
			if lane := t.firstActiveLane(g); lane >= 0 {
				old[g] = laneOld[lane]
			}
		}
	}
}

// Mask narrows execution to the groups passing pred for the duration of
// body — the virtual-warp analogue of "if (condition) { ... }" in scalar
// kernel code. Groups failing pred sit idle (divergence cost applies when
// some groups pass and some fail).
func (t *Tasks) Mask(pred func(g int) bool, body func()) {
	t.W.IfGrouped(t.K, func(lane int) bool {
		g := t.Group(lane)
		return t.Valid(g) && pred(g)
	}, body, nil)
}

// LoadF32Grouped is the float32 variant of LoadI32Grouped: the replicated
// per-group gather dst[g] = buf[idx[g]].
func (t *Tasks) LoadF32Grouped(buf *simt.BufF32, idx []int32, dst []float32) {
	w := t.W
	t.replicateI32(idx, t.laneIdx)
	laneVal := w.VecF32()
	w.LoadF32(buf, t.laneIdx, laneVal)
	for g := 0; g < t.Groups; g++ {
		if lane := t.firstActiveLane(g); lane >= 0 {
			dst[g] = laneVal[lane]
		}
	}
}

// StoreF32Grouped is the float32 variant of StoreI32Grouped: the group
// leader writes buf[idx[g]] = val[g] for groups passing pred (nil = all).
func (t *Tasks) StoreF32Grouped(buf *simt.BufF32, idx []int32, val []float32, pred func(g int) bool) {
	w := t.W
	leaders := t.leaderLanes()
	laneVal := w.VecF32()
	w.ApplyReplicated(1, t.K, func(g int) {
		base := g * t.K
		for lane := base; lane < base+t.K; lane++ {
			t.laneIdx[lane] = idx[g]
			laneVal[lane] = val[g]
		}
	})
	w.If(func(lane int) bool {
		g := t.Group(lane)
		return leaders[lane] && t.Valid(g) && (pred == nil || pred(g))
	}, func() {
		w.StoreF32(buf, t.laneIdx, laneVal)
	}, nil)
}

// ReduceAddF32 sums the per-lane values of src within each group (a
// shuffle-tree reduction) and writes the per-group totals to dst.
func (t *Tasks) ReduceAddF32(src []float32, dst []float32) {
	w := t.W
	laneSum := w.VecF32()
	w.GroupReduceAddF32(t.K, src, laneSum)
	for g := 0; g < t.Groups; g++ {
		if lane := t.firstActiveLane(g); lane >= 0 {
			dst[g] = laneSum[lane]
		}
	}
}

// ReduceAddI32 sums the per-lane values of src within each group and writes
// the per-group totals to dst.
func (t *Tasks) ReduceAddI32(src []int32, dst []int32) {
	w := t.W
	laneSum := w.VecI32()
	w.GroupReduceAddI32(t.K, src, laneSum)
	for g := 0; g < t.Groups; g++ {
		if lane := t.firstActiveLane(g); lane >= 0 {
			dst[g] = laneSum[lane]
		}
	}
}

// SIMDRange is the SIMD phase: for each active group, the K lanes stride
// over [start[g], end[g]). body receives the per-lane position vector j;
// lanes whose position has run past their group's end are masked off, so
// trip-count differences between groups cost idle lanes — the residual
// intra-warp imbalance the paper tunes with K.
func (t *Tasks) SIMDRange(start, end []int32, body func(j []int32)) {
	w := t.W
	j := w.VecI32()
	w.Apply(1, func(lane int) {
		j[lane] = start[t.Group(lane)] + int32(t.LaneInGroup(lane))
	})
	w.While(func(lane int) bool {
		g := t.Group(lane)
		return t.Valid(g) && j[lane] < end[g]
	}, func() {
		body(j)
		w.Apply(1, func(lane int) { j[lane] += int32(t.K) })
	})
}

// replicateI32 broadcasts per-group values to every lane of the group,
// charged as one replicated warp instruction (this is exactly what the
// SISD-phase address computation costs on hardware: all lanes busy, one
// useful result per virtual warp).
func (t *Tasks) replicateI32(src []int32, dst []int32) {
	t.W.ApplyReplicated(1, t.K, func(g int) {
		base := g * t.K
		for lane := base; lane < base+t.K; lane++ {
			dst[lane] = src[g]
		}
	})
}

// replicateI32Pair broadcasts two per-group vectors in one replicated
// instruction.
func (t *Tasks) replicateI32Pair(srcA, srcB, dstA, dstB []int32) {
	t.W.ApplyReplicated(1, t.K, func(g int) {
		base := g * t.K
		for lane := base; lane < base+t.K; lane++ {
			dstA[lane] = srcA[g]
			dstB[lane] = srcB[g]
		}
	})
}

// GroupLoop iterates each group sequentially over [start[g], end[g]): every
// round, body sees pos (per group, the group's current position); groups
// that finish early sit masked out until the loop drains. Use it for the
// replicated-phase outer loops of nested-iteration kernels (e.g. "for each
// neighbor v of u" in triangle counting, with a SIMD phase inside).
func (t *Tasks) GroupLoop(start, end []int32, body func(pos []int32)) {
	w := t.W
	pos := append(make([]int32, 0, t.Groups), start[:t.Groups]...)
	w.While(func(lane int) bool {
		g := t.Group(lane)
		return t.Valid(g) && pos[g] < end[g]
	}, func() {
		body(pos)
		t.SISD(1, func(g int) { pos[g]++ })
	})
}

// firstActiveLane returns the lowest active lane of group g, or -1.
func (t *Tasks) firstActiveLane(g int) int {
	base := g * t.K
	for lane := base; lane < base+t.K; lane++ {
		if t.W.LaneActive(lane) {
			return lane
		}
	}
	return -1
}

// leaderLanes marks the first active lane of each group.
func (t *Tasks) leaderLanes() []bool {
	leaders := make([]bool, t.W.Width())
	for g := 0; g < t.Groups; g++ {
		if lane := t.firstActiveLane(g); lane >= 0 {
			leaders[lane] = true
		}
	}
	return leaders
}

// ForEachStatic distributes tasks [0, numTasks) over all virtual warps of
// the grid with a strided (round-robin) static schedule and invokes body
// once per round with the warp's task assignment.
func ForEachStatic(w *simt.WarpCtx, k int, numTasks int32, body func(t *Tasks)) {
	t := newTasks(w, k)
	groups := int32(t.Groups)
	gridWarps := int32(w.GridThreads() / w.Width())
	totalVW := gridWarps * groups
	baseVW := int32(w.GlobalWarpID()) * groups
	for round := int32(0); ; round++ {
		first := baseVW + round*totalVW
		if first >= numTasks {
			break
		}
		any := false
		for g := int32(0); g < groups; g++ {
			id := first + g
			if id < numTasks {
				t.Task[g] = id
				any = true
			} else {
				t.Task[g] = -1
			}
		}
		if !any {
			break
		}
		w.IfGrouped(t.K, func(lane int) bool { return t.Valid(t.Group(lane)) }, func() {
			body(t)
		}, nil)
	}
}

// ForEachStaticBlocked distributes tasks in contiguous blocks: virtual warp
// i owns tasks [i*ceil(n/totalVW), (i+1)*ceil(n/totalVW)) — the paper-era
// static partitioning that ForEachStatic's stride schedule improves on.
// Kept as the baseline for the dynamic-distribution comparison (E7): when
// hot vertices cluster in id space, blocked assignment concentrates them in
// few virtual warps.
func ForEachStaticBlocked(w *simt.WarpCtx, k int, numTasks int32, body func(t *Tasks)) {
	t := newTasks(w, k)
	groups := int32(t.Groups)
	gridWarps := int32(w.GridThreads() / w.Width())
	totalVW := gridWarps * groups
	if totalVW == 0 {
		return
	}
	per := (numTasks + totalVW - 1) / totalVW
	baseVW := int32(w.GlobalWarpID()) * groups
	for off := int32(0); off < per; off++ {
		any := false
		for g := int32(0); g < groups; g++ {
			id := (baseVW+g)*per + off
			if id < numTasks {
				t.Task[g] = id
				any = true
			} else {
				t.Task[g] = -1
			}
		}
		if !any {
			// Later offsets cannot become valid: ids only grow with off.
			break
		}
		w.IfGrouped(t.K, func(lane int) bool { return t.Valid(t.Group(lane)) }, func() {
			body(t)
		}, nil)
	}
}

// FetchChunk has one lane of the physical warp atomically advance the global
// task counter by chunk and broadcasts the claimed base index to the warp —
// the paper's dynamic workload distribution primitive.
func FetchChunk(w *simt.WarpCtx, counter *simt.BufI32, chunk int32) int32 {
	old := w.VecI32()
	w.If(func(lane int) bool { return lane == 0 }, func() {
		w.AtomicAddI32(counter, w.ConstI32(0), w.ConstI32(chunk), old)
	}, nil)
	return w.BroadcastI32(old, 0)
}

// ForEachDynamic distributes tasks [0, numTasks) over physical warps in
// chunks claimed from the global counter buffer (counter[0] must be zeroed
// by the host before launch). Within a claimed chunk, tasks are dealt to the
// warp's virtual warps round-robin.
func ForEachDynamic(w *simt.WarpCtx, k int, numTasks int32, counter *simt.BufI32, chunk int32, body func(t *Tasks)) {
	if chunk < 1 {
		panic(fmt.Sprintf("vwarp: chunk size %d must be >= 1", chunk))
	}
	t := newTasks(w, k)
	groups := int32(t.Groups)
	for {
		base := FetchChunk(w, counter, chunk)
		if base >= numTasks {
			break
		}
		limit := base + chunk
		if limit > numTasks {
			limit = numTasks
		}
		for off := base; off < limit; off += groups {
			any := false
			for g := int32(0); g < groups; g++ {
				id := off + g
				if id < limit {
					t.Task[g] = id
					any = true
				} else {
					t.Task[g] = -1
				}
			}
			if !any {
				break
			}
			w.IfGrouped(t.K, func(lane int) bool { return t.Valid(t.Group(lane)) }, func() {
				body(t)
			}, nil)
		}
	}
}
