// Package vwarp implements the paper's virtual warp-centric programming
// method (Hong et al., PPoPP 2011) on top of the simt substrate.
//
// A physical warp of width W is divided into W/K virtual warps of width K.
// Each virtual warp owns one task (typically a vertex) at a time and
// processes it in two phases:
//
//   - a replicated (SISD) phase, where every lane of the virtual warp
//     executes the same scalar instruction stream (Tasks.SISD,
//     Tasks.LoadI32Grouped), paying no divergence but wasting K-1 of every
//     K lanes; and
//   - a SIMD phase (Tasks.SIMDRange), where the K lanes cooperatively
//     stride over the task's data (an adjacency list), so a heavy task is
//     spread across lanes instead of serializing one lane.
//
// K is the trade-off knob: K=1 degenerates to the classic thread-per-task
// mapping (maximum ALU use, maximum imbalance), K=W is full warp-per-task
// (minimum imbalance, most replication waste).
//
// The package also provides the paper's two auxiliary techniques: dynamic
// workload distribution via a global task counter (ForEachDynamic) and
// deferring outliers to a global queue (OutlierQueue) for a follow-up pass
// at maximum parallelism.
package vwarp

import (
	"fmt"

	"maxwarp/internal/simt"
)

// Tasks is the per-round view a body callback receives: each virtual-warp
// group g of width K holds task Task[g] (or -1 when the group is idle this
// round). All per-group slices have length Groups.
//
// A Tasks is cached on its warp context (simt.WarpCtx.KernelScratch) and
// reused across rounds, kernel invocations and launches, so the helpers
// below — and the ForEach drivers that call them every round — allocate
// nothing in steady state. The cost of that reuse is a non-reentrancy rule:
// a helper must not be re-invoked from inside its own callback (no
// SIMDRange inside its own body, no SISD inside an SISD function). Distinct
// helpers nest freely (Mask inside Mask, SIMDRange inside GroupLoop, ...):
// every predicate is fully consumed before its body runs.
type Tasks struct {
	// W is the underlying physical-warp context; kernels may use it directly
	// for per-lane (SIMD-phase) operations.
	W *simt.WarpCtx
	// K is the virtual warp width.
	K int
	// Groups is W.Width()/K, the number of virtual warps per physical warp.
	Groups int
	// Task holds each group's current task id, -1 when idle.
	Task []int32

	// Scratch vectors, allocated once when the Tasks is built (they must not
	// come from the register file — that is reclaimed every invocation, but
	// this struct outlives invocations). Each is private to a single helper
	// call; none carries state between calls.
	laneIdx  []int32   // per-lane replicated index vector
	laneVal  []int32   // per-lane value vector
	laneF32  []float32 // per-lane float value vector
	laneOld  []int32   // atomic old-value landing pad
	laneSum  []int32   // int reduction result vector
	laneSumF []float32 // float reduction result vector
	leaders  []bool    // per-lane group-leader marks
	simdJ    []int32   // SIMDRange per-lane position vector
	groupPos []int32   // GroupLoop per-group position vector
	zeroV    []int32   // all-zero constant vector
	oneV     []int32   // all-one constant vector

	// Cached closures. Each helper stashes its per-call arguments in the
	// fields below and invokes a closure built once in newTasks, so calling
	// a helper every round costs no allocation. The set-then-call pattern is
	// what the non-reentrancy rule above protects.
	validFn func(lane int) bool // lane's group has a task

	runUser func(t *Tasks) // current ForEach body
	runFn   func()

	maskUser func(g int) bool
	maskFn   func(lane int) bool

	sisdUser func(g int)
	sisdFn   func(g int)

	repSrc, repDst   []int32
	repFn            func(g int)
	repSrcB, repDstB []int32
	repPairFn        func(g int)

	repF32Idx []int32
	repF32Val []float32
	repF32Fn  func(g int)

	leaderUser func(g int) bool // nil = all groups
	leaderFn   func(lane int) bool

	storeI32Buf *simt.BufI32
	storeI32Fn  func()
	storeF32Buf *simt.BufF32
	storeF32Fn  func()
	atomBuf     *simt.BufI32
	atomFn      func()

	simdStart, simdEnd []int32
	simdUser           func(j []int32)
	simdInitFn         func(lane int)
	simdCondFn         func(lane int) bool
	simdBodyFn         func()

	glEnd    []int32
	glUser   func(pos []int32)
	glCondFn func(lane int) bool
	glStepFn func(g int)
	glBodyFn func()

	fcCounter           *simt.BufI32
	fcChunkV, fcOld     []int32
	fcLane0Fn           func(lane int) bool
	fcFn                func()
	deferQ              *OutlierQueue
	deferSlot, deferIDs []int32
	deferBodyFn         func()
	deferFitFn          func(lane int) bool
	deferStoreFn        func()
	deferIDFn           func(lane int)
}

// tasksScratchKey is the Tasks cache slot on a WarpCtx's KernelScratch.
const tasksScratchKey = "vwarp.tasks"

func newTasks(w *simt.WarpCtx, k int) *Tasks {
	width := w.Width()
	if k < 1 || k > width || width%k != 0 {
		panic(fmt.Sprintf("vwarp: virtual warp width %d invalid for physical width %d", k, width))
	}
	if t, ok := w.KernelScratch(tasksScratchKey).(*Tasks); ok && t.K == k {
		return t
	}
	groups := width / k
	t := &Tasks{
		W:         w,
		K:         k,
		Groups:    groups,
		Task:      make([]int32, groups),
		laneIdx:   make([]int32, width),
		laneVal:   make([]int32, width),
		laneF32:   make([]float32, width),
		laneOld:   make([]int32, width),
		laneSum:   make([]int32, width),
		laneSumF:  make([]float32, width),
		leaders:   make([]bool, width),
		simdJ:     make([]int32, width),
		groupPos:  make([]int32, groups),
		zeroV:     make([]int32, width),
		oneV:      make([]int32, width),
		repF32Idx: make([]int32, width),
		repF32Val: make([]float32, width),
		fcChunkV:  make([]int32, width),
		fcOld:     make([]int32, width),
		deferSlot: make([]int32, width),
		deferIDs:  make([]int32, width),
	}
	for i := range t.oneV {
		t.oneV[i] = 1
	}
	t.buildClosures()
	w.SetKernelScratch(tasksScratchKey, t)
	return t
}

// buildClosures constructs the helper closures exactly once per Tasks.
func (t *Tasks) buildClosures() {
	w := t.W
	t.validFn = func(lane int) bool { return t.Valid(t.Group(lane)) }
	t.runFn = func() { t.runUser(t) }
	t.maskFn = func(lane int) bool {
		g := t.Group(lane)
		return t.Valid(g) && t.maskUser(g)
	}
	t.sisdFn = func(g int) {
		if t.Valid(g) {
			t.sisdUser(g)
		}
	}
	t.repFn = func(g int) {
		base := g * t.K
		v := t.repSrc[g]
		for lane := base; lane < base+t.K; lane++ {
			t.repDst[lane] = v
		}
	}
	t.repPairFn = func(g int) {
		base := g * t.K
		a, b := t.repSrcB[g], t.repDstB[g]
		for lane := base; lane < base+t.K; lane++ {
			t.laneIdx[lane] = a
			t.laneVal[lane] = b
		}
	}
	t.repF32Fn = func(g int) {
		base := g * t.K
		idx, v := t.repF32Idx[g], t.repF32Val[g]
		for lane := base; lane < base+t.K; lane++ {
			t.laneIdx[lane] = idx
			t.laneF32[lane] = v
		}
	}
	t.leaderFn = func(lane int) bool {
		g := t.Group(lane)
		return t.leaders[lane] && t.Valid(g) && (t.leaderUser == nil || t.leaderUser(g))
	}
	t.storeI32Fn = func() { w.StoreI32(t.storeI32Buf, t.laneIdx, t.laneVal) }
	t.storeF32Fn = func() { w.StoreF32(t.storeF32Buf, t.laneIdx, t.laneF32) }
	t.atomFn = func() { w.AtomicAddI32(t.atomBuf, t.laneIdx, t.laneVal, t.laneOld) }
	t.simdInitFn = func(lane int) {
		t.simdJ[lane] = t.simdStart[t.Group(lane)] + int32(t.LaneInGroup(lane))
	}
	t.simdCondFn = func(lane int) bool {
		g := t.Group(lane)
		return t.Valid(g) && t.simdJ[lane] < t.simdEnd[g]
	}
	t.simdBodyFn = func() {
		t.simdUser(t.simdJ)
		w.AddConstI32(t.simdJ, int32(t.K))
	}
	t.glCondFn = func(lane int) bool {
		g := t.Group(lane)
		return t.Valid(g) && t.groupPos[g] < t.glEnd[g]
	}
	t.glStepFn = func(g int) { t.groupPos[g]++ }
	t.glBodyFn = func() {
		t.glUser(t.groupPos)
		t.SISD(1, t.glStepFn)
	}
	t.fcLane0Fn = func(lane int) bool { return lane == 0 }
	t.fcFn = func() { w.AtomicAddI32(t.fcCounter, t.zeroV, t.fcChunkV, t.fcOld) }
	t.deferIDFn = func(lane int) { t.deferIDs[lane] = t.Task[t.Group(lane)] }
	t.deferFitFn = func(lane int) bool { return t.deferSlot[lane] < int32(t.deferQ.Items.Len()) }
	t.deferStoreFn = func() { w.StoreI32(t.deferQ.Items, t.deferSlot, t.deferIDs) }
	t.deferBodyFn = func() {
		w.AtomicAddI32(t.deferQ.Count, t.zeroV, t.oneV, t.deferSlot)
		w.Apply(1, t.deferIDFn)
		w.If(t.deferFitFn, t.deferStoreFn, nil)
	}
}

// Group returns the virtual-warp group a lane belongs to.
func (t *Tasks) Group(lane int) int { return lane / t.K }

// LaneInGroup returns a lane's index within its virtual warp.
func (t *Tasks) LaneInGroup(lane int) int { return lane % t.K }

// Valid reports whether group g has a task this round.
func (t *Tasks) Valid(g int) bool { return t.Task[g] >= 0 }

// SISD runs f once per active virtual warp, charged as `instrs` replicated
// warp instructions (every hardware lane busy, one useful result per group).
func (t *Tasks) SISD(instrs int, f func(g int)) {
	t.sisdUser = f
	t.W.ApplyReplicated(instrs, t.K, t.sisdFn)
}

// LoadI32Grouped performs the replicated-phase load dst[g] = buf[idx[g]] for
// every active group. All K lanes of a group issue the same address, exactly
// like replicated scalar code on hardware; coalescing collapses them into
// one transaction per touched segment.
func (t *Tasks) LoadI32Grouped(buf *simt.BufI32, idx, dst []int32) {
	w := t.W
	t.replicateI32(idx, t.laneIdx)
	w.LoadI32Replicated(t.K, buf, t.laneIdx, t.laneVal)
	for g := 0; g < t.Groups; g++ {
		if lane := t.firstActiveLane(g); lane >= 0 {
			dst[g] = t.laneVal[lane]
		}
	}
}

// StoreI32Grouped performs the replicated-phase store buf[idx[g]] = val[g]
// for every active group for which pred holds (nil pred = all). Only the
// group leader lane writes, like "if (lane_of_vw == 0)" in CUDA code.
func (t *Tasks) StoreI32Grouped(buf *simt.BufI32, idx, val []int32, pred func(g int) bool) {
	t.leaderLanes()
	t.replicateI32Pair(idx, val)
	t.leaderUser = pred
	t.storeI32Buf = buf
	t.W.If(t.leaderFn, t.storeI32Fn, nil)
}

// AtomicAddGrouped atomically adds delta[g] to buf[idx[g]] once per active
// group for which pred holds, placing the previous value in old[g] (old may
// be nil). One lane per group performs the atomic, as hardware code would.
func (t *Tasks) AtomicAddGrouped(buf *simt.BufI32, idx, delta, old []int32, pred func(g int) bool) {
	t.leaderLanes()
	t.replicateI32Pair(idx, delta)
	t.leaderUser = pred
	t.atomBuf = buf
	t.W.If(t.leaderFn, t.atomFn, nil)
	if old != nil {
		for g := 0; g < t.Groups; g++ {
			if lane := t.firstActiveLane(g); lane >= 0 {
				old[g] = t.laneOld[lane]
			}
		}
	}
}

// Mask narrows execution to the groups passing pred for the duration of
// body — the virtual-warp analogue of "if (condition) { ... }" in scalar
// kernel code. Groups failing pred sit idle (divergence cost applies when
// some groups pass and some fail).
func (t *Tasks) Mask(pred func(g int) bool, body func()) {
	t.maskUser = pred
	t.W.IfGrouped(t.K, t.maskFn, body, nil)
}

// LoadF32Grouped is the float32 variant of LoadI32Grouped: the replicated
// per-group gather dst[g] = buf[idx[g]].
func (t *Tasks) LoadF32Grouped(buf *simt.BufF32, idx []int32, dst []float32) {
	w := t.W
	t.replicateI32(idx, t.laneIdx)
	w.LoadF32(buf, t.laneIdx, t.laneF32)
	for g := 0; g < t.Groups; g++ {
		if lane := t.firstActiveLane(g); lane >= 0 {
			dst[g] = t.laneF32[lane]
		}
	}
}

// StoreF32Grouped is the float32 variant of StoreI32Grouped: the group
// leader writes buf[idx[g]] = val[g] for groups passing pred (nil = all).
func (t *Tasks) StoreF32Grouped(buf *simt.BufF32, idx []int32, val []float32, pred func(g int) bool) {
	t.leaderLanes()
	copy(t.repF32Idx[:t.Groups], idx)
	copy(t.repF32Val[:t.Groups], val)
	t.W.ApplyReplicated(1, t.K, t.repF32Fn)
	t.leaderUser = pred
	t.storeF32Buf = buf
	t.W.If(t.leaderFn, t.storeF32Fn, nil)
}

// ReduceAddF32 sums the per-lane values of src within each group (a
// shuffle-tree reduction) and writes the per-group totals to dst.
func (t *Tasks) ReduceAddF32(src []float32, dst []float32) {
	w := t.W
	laneSum := t.laneSumF
	w.GroupReduceAddF32(t.K, src, laneSum)
	for g := 0; g < t.Groups; g++ {
		if lane := t.firstActiveLane(g); lane >= 0 {
			dst[g] = laneSum[lane]
		}
	}
}

// ReduceAddI32 sums the per-lane values of src within each group and writes
// the per-group totals to dst.
func (t *Tasks) ReduceAddI32(src []int32, dst []int32) {
	w := t.W
	laneSum := t.laneSum
	w.GroupReduceAddI32(t.K, src, laneSum)
	for g := 0; g < t.Groups; g++ {
		if lane := t.firstActiveLane(g); lane >= 0 {
			dst[g] = laneSum[lane]
		}
	}
}

// SIMDRange is the SIMD phase: for each active group, the K lanes stride
// over [start[g], end[g]). body receives the per-lane position vector j;
// lanes whose position has run past their group's end are masked off, so
// trip-count differences between groups cost idle lanes — the residual
// intra-warp imbalance the paper tunes with K.
func (t *Tasks) SIMDRange(start, end []int32, body func(j []int32)) {
	t.simdStart, t.simdEnd = start, end
	t.simdUser = body
	t.W.Apply(1, t.simdInitFn)
	t.W.While(t.simdCondFn, t.simdBodyFn)
}

// replicateI32 broadcasts per-group values to every lane of the group,
// charged as one replicated warp instruction (this is exactly what the
// SISD-phase address computation costs on hardware: all lanes busy, one
// useful result per virtual warp).
func (t *Tasks) replicateI32(src []int32, dst []int32) {
	t.repSrc, t.repDst = src, dst
	t.W.ApplyReplicated(1, t.K, t.repFn)
}

// replicateI32Pair broadcasts two per-group vectors into laneIdx/laneVal in
// one replicated instruction.
func (t *Tasks) replicateI32Pair(srcA, srcB []int32) {
	t.repSrcB, t.repDstB = srcA, srcB
	t.W.ApplyReplicated(1, t.K, t.repPairFn)
}

// GroupLoop iterates each group sequentially over [start[g], end[g]): every
// round, body sees pos (per group, the group's current position); groups
// that finish early sit masked out until the loop drains. Use it for the
// replicated-phase outer loops of nested-iteration kernels (e.g. "for each
// neighbor v of u" in triangle counting, with a SIMD phase inside).
func (t *Tasks) GroupLoop(start, end []int32, body func(pos []int32)) {
	copy(t.groupPos, start[:t.Groups])
	t.glEnd = end
	t.glUser = body
	t.W.While(t.glCondFn, t.glBodyFn)
}

// firstActiveLane returns the lowest active lane of group g, or -1.
func (t *Tasks) firstActiveLane(g int) int {
	base := g * t.K
	for lane := base; lane < base+t.K; lane++ {
		if t.W.LaneActive(lane) {
			return lane
		}
	}
	return -1
}

// leaderLanes marks the first active lane of each group in the reusable
// leaders scratch (recomputed every call — leadership depends on the live
// mask).
func (t *Tasks) leaderLanes() []bool {
	leaders := t.leaders
	for lane := range leaders {
		leaders[lane] = false
	}
	for g := 0; g < t.Groups; g++ {
		if lane := t.firstActiveLane(g); lane >= 0 {
			leaders[lane] = true
		}
	}
	return leaders
}

// ForEachStatic distributes tasks [0, numTasks) over all virtual warps of
// the grid with a strided (round-robin) static schedule and invokes body
// once per round with the warp's task assignment.
func ForEachStatic(w *simt.WarpCtx, k int, numTasks int32, body func(t *Tasks)) {
	t := newTasks(w, k)
	t.runUser = body
	groups := int32(t.Groups)
	gridWarps := int32(w.GridThreads() / w.Width())
	totalVW := gridWarps * groups
	baseVW := int32(w.GlobalWarpID()) * groups
	for round := int32(0); ; round++ {
		first := baseVW + round*totalVW
		if first >= numTasks {
			break
		}
		any := false
		for g := int32(0); g < groups; g++ {
			id := first + g
			if id < numTasks {
				t.Task[g] = id
				any = true
			} else {
				t.Task[g] = -1
			}
		}
		if !any {
			break
		}
		w.IfGrouped(t.K, t.validFn, t.runFn, nil)
	}
}

// ForEachStaticBlocked distributes tasks in contiguous blocks: virtual warp
// i owns tasks [i*ceil(n/totalVW), (i+1)*ceil(n/totalVW)) — the paper-era
// static partitioning that ForEachStatic's stride schedule improves on.
// Kept as the baseline for the dynamic-distribution comparison (E7): when
// hot vertices cluster in id space, blocked assignment concentrates them in
// few virtual warps.
func ForEachStaticBlocked(w *simt.WarpCtx, k int, numTasks int32, body func(t *Tasks)) {
	t := newTasks(w, k)
	t.runUser = body
	groups := int32(t.Groups)
	gridWarps := int32(w.GridThreads() / w.Width())
	totalVW := gridWarps * groups
	if totalVW == 0 {
		return
	}
	per := (numTasks + totalVW - 1) / totalVW
	baseVW := int32(w.GlobalWarpID()) * groups
	for off := int32(0); off < per; off++ {
		any := false
		for g := int32(0); g < groups; g++ {
			id := (baseVW+g)*per + off
			if id < numTasks {
				t.Task[g] = id
				any = true
			} else {
				t.Task[g] = -1
			}
		}
		if !any {
			// Later offsets cannot become valid: ids only grow with off.
			break
		}
		w.IfGrouped(t.K, t.validFn, t.runFn, nil)
	}
}

// FetchChunk has one lane of the physical warp atomically advance the global
// task counter by chunk and broadcasts the claimed base index to the warp —
// the paper's dynamic workload distribution primitive. Loop callers should
// hoist the three register vectors and use fetchChunk-style reuse (as
// ForEachDynamic does) so repeated claims stay allocation-free.
func FetchChunk(w *simt.WarpCtx, counter *simt.BufI32, chunk int32) int32 {
	return fetchChunk(w, counter, w.ConstI32(0), w.ConstI32(chunk), w.VecI32())
}

// fetchChunk is FetchChunk with caller-owned registers: zero and chunkV are
// the replicated index/delta vectors, old the landing pad for the claimed
// counter value.
func fetchChunk(w *simt.WarpCtx, counter *simt.BufI32, zero, chunkV, old []int32) int32 {
	w.If(func(lane int) bool { return lane == 0 }, func() {
		w.AtomicAddI32(counter, zero, chunkV, old)
	}, nil)
	return w.BroadcastI32(old, 0)
}

// ForEachDynamic distributes tasks [0, numTasks) over physical warps in
// chunks claimed from the global counter buffer (counter[0] must be zeroed
// by the host before launch). Within a claimed chunk, tasks are dealt to the
// warp's virtual warps round-robin.
func ForEachDynamic(w *simt.WarpCtx, k int, numTasks int32, counter *simt.BufI32, chunk int32, body func(t *Tasks)) {
	if chunk < 1 {
		panic(fmt.Sprintf("vwarp: chunk size %d must be >= 1", chunk))
	}
	t := newTasks(w, k)
	t.runUser = body
	t.fcCounter = counter
	for i := range t.fcChunkV {
		t.fcChunkV[i] = chunk
	}
	groups := int32(t.Groups)
	for {
		w.If(t.fcLane0Fn, t.fcFn, nil)
		base := w.BroadcastI32(t.fcOld, 0)
		if base >= numTasks {
			break
		}
		limit := base + chunk
		if limit > numTasks {
			limit = numTasks
		}
		for off := base; off < limit; off += groups {
			any := false
			for g := int32(0); g < groups; g++ {
				id := off + g
				if id < limit {
					t.Task[g] = id
					any = true
				} else {
					t.Task[g] = -1
				}
			}
			if !any {
				break
			}
			w.IfGrouped(t.K, t.validFn, t.runFn, nil)
		}
	}
}
