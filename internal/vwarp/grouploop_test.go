package vwarp

import (
	"testing"

	"maxwarp/internal/simt"
)

func TestGroupLoopVisitsEveryPositionOnce(t *testing.T) {
	// Each task owns a range of positions; GroupLoop must visit each exactly
	// once, per group, in order.
	d := testDevice(t)
	lens := []int32{3, 0, 7, 1, 12, 5, 2, 9}
	starts := make([]int32, len(lens))
	total := int32(0)
	for i, ln := range lens {
		starts[i] = total
		total += ln
	}
	startBuf := d.UploadI32("starts", starts)
	lenBuf := d.UploadI32("lens", lens)
	visits := d.AllocI32("visits", int(total))
	orderOK := d.AllocI32("orderOK", 1)
	orderOK.Data()[0] = 1
	kernel := func(w *simt.WarpCtx) {
		ForEachStatic(w, 8, int32(len(lens)), func(ts *Tasks) {
			start := make([]int32, ts.Groups)
			ln := make([]int32, ts.Groups)
			end := make([]int32, ts.Groups)
			prev := make([]int32, ts.Groups)
			ts.LoadI32Grouped(startBuf, ts.Task, start)
			ts.LoadI32Grouped(lenBuf, ts.Task, ln)
			ts.SISD(1, func(g int) {
				end[g] = start[g] + ln[g]
				prev[g] = start[g] - 1
			})
			ts.GroupLoop(start, end, func(pos []int32) {
				one := make([]int32, ts.Groups)
				for g := range one {
					one[g] = 1
				}
				ts.AtomicAddGrouped(visits, pos, one, nil, nil)
				ts.SISD(1, func(g int) {
					if pos[g] != prev[g]+1 {
						panic("GroupLoop out of order")
					}
					prev[g] = pos[g]
				})
			})
		})
	}
	if _, err := d.Launch(simt.Grid1D(len(lens)*8, 64), kernel); err != nil {
		t.Fatal(err)
	}
	for i, v := range visits.Data() {
		if v != 1 {
			t.Fatalf("position %d visited %d times", i, v)
		}
	}
}

func TestGroupLoopEmptyRanges(t *testing.T) {
	d := testDevice(t)
	touched := d.AllocI32("touched", 1)
	kernel := func(w *simt.WarpCtx) {
		ForEachStatic(w, 4, 8, func(ts *Tasks) {
			start := make([]int32, ts.Groups)
			end := make([]int32, ts.Groups) // all empty
			ts.GroupLoop(start, end, func(pos []int32) {
				one := ts.W.ConstI32(1)
				ts.W.StoreI32(touched, ts.W.ConstI32(0), one)
			})
		})
	}
	if _, err := d.Launch(simt.Grid1D(64, 64), kernel); err != nil {
		t.Fatal(err)
	}
	if touched.Data()[0] != 0 {
		t.Fatal("GroupLoop body ran on empty ranges")
	}
}
