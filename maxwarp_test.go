package maxwarp_test

import (
	"reflect"
	"testing"

	"maxwarp"
)

// TestPublicAPIEndToEnd exercises the facade the way a downstream user
// would: generate, upload, run every algorithm, cross-check with CPU.
func TestPublicAPIEndToEnd(t *testing.T) {
	g, err := maxwarp.RMAT(8, 8, maxwarp.DefaultRMATParams, 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := maxwarp.DefaultDeviceConfig()
	cfg.NumSMs = 4
	dev, err := maxwarp.NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dg, err := maxwarp.UploadGraph(dev, g)
	if err != nil {
		t.Fatal(err)
	}

	res, err := maxwarp.BFS(dev, dg, 0, maxwarp.Options{K: 32})
	if err != nil {
		t.Fatal(err)
	}
	if want := maxwarp.BFSCPU(g, 0); !reflect.DeepEqual(res.Levels, want) {
		t.Fatal("facade BFS differs from CPU")
	}
	if par := maxwarp.BFSCPUParallel(g, 0, 2); !reflect.DeepEqual(par, res.Levels) {
		t.Fatal("parallel CPU BFS differs")
	}

	weights := maxwarp.EdgeWeights(g, 8, 9)
	wdg, err := maxwarp.UploadWeightedGraph(dev, g, weights)
	if err != nil {
		t.Fatal(err)
	}
	sres, err := maxwarp.SSSP(dev, wdg, 0, maxwarp.Options{K: 8})
	if err != nil {
		t.Fatal(err)
	}
	if want := maxwarp.SSSPCPU(g, weights, 0); !reflect.DeepEqual(sres.Dist, want) {
		t.Fatal("facade SSSP differs from CPU")
	}

	if _, err := maxwarp.PageRank(dev, g, maxwarp.PageRankOptions{
		Options: maxwarp.Options{K: 8}, Iterations: 3,
	}); err != nil {
		t.Fatal(err)
	}

	values := make([]int32, g.NumVertices())
	if _, err := maxwarp.NeighborSum(dev, dg, values, maxwarp.Options{K: 4}); err != nil {
		t.Fatal(err)
	}

	sym, err := g.Symmetrize()
	if err != nil {
		t.Fatal(err)
	}
	sdg, err := maxwarp.UploadGraph(dev, sym)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := maxwarp.ConnectedComponents(dev, sdg, maxwarp.Options{K: 16}); err != nil {
		t.Fatal(err)
	}

	if s := maxwarp.Stats(g); s.NumVertices != 256 {
		t.Fatalf("Stats: %+v", s)
	}
	if len(maxwarp.Presets()) == 0 {
		t.Fatal("no presets")
	}
	if len(maxwarp.Experiments()) == 0 {
		t.Fatal("no experiments")
	}
	if _, err := maxwarp.ExperimentByID("E1"); err != nil {
		t.Fatal(err)
	}
	if _, err := maxwarp.NewGraph(2, []maxwarp.Edge{{Src: 0, Dst: 1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := maxwarp.Mesh2D(4, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := maxwarp.UniformRandom(16, 32, 1); err != nil {
		t.Fatal(err)
	}
}
