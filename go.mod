module maxwarp

go 1.22
