// Package maxwarp is a from-scratch, pure-Go reproduction of
//
//	Hong, Kim, Oguntebi, Olukotun.
//	"Accelerating CUDA Graph Algorithms at Maximum Warp." PPoPP 2011.
//
// The package is the public facade over the repository's internal layers:
//
//   - a deterministic SIMT GPU simulator (internal/simt) standing in for the
//     paper's CUDA hardware — warps, divergence masks, memory coalescing,
//     atomics, shared memory, latency hiding;
//   - the paper's virtual warp-centric programming method (internal/vwarp):
//     virtual warps of width K, replicated (SISD) + SIMD phases, dynamic
//     workload distribution, and outlier deferral;
//   - graph algorithms in both the thread-per-vertex baseline and
//     warp-centric mappings (internal/gpualgo), with CPU oracles
//     (internal/cpualgo);
//   - seeded workload generators matching the paper's dataset regimes
//     (internal/gengraph);
//   - the experiment harness regenerating every table/figure
//     (internal/bench);
//   - fault injection and a resilient launch/retry layer
//     (internal/simt fault plans, internal/resilient) — typed kernel
//     errors, checkpointed retries, CPU-oracle degradation;
//   - a fault-tolerant analytics service (internal/serve, `maxwarp
//     serve`) multiplexing concurrent queries over a device pool with
//     admission control, deadlines, circuit breakers, and graceful
//     degradation (see docs/SERVICE.md).
//
// Quick start:
//
//	g, _ := maxwarp.RMAT(14, 16, maxwarp.DefaultRMATParams, 42)
//	dev, _ := maxwarp.NewDevice(maxwarp.DefaultDeviceConfig())
//	dg, _ := maxwarp.UploadGraph(dev, g)
//	res, _ := maxwarp.BFS(dev, dg, 0, maxwarp.Options{K: 32})
//	fmt.Println(res.Depth, res.Stats.Cycles)
//
// See docs/ROBUSTNESS.md for the failure model: every kernel failure
// surfaces as a typed error at the launch boundary, never as a panic.
//
// See README.md for the architecture overview and EXPERIMENTS.md for the
// paper-vs-measured record.
package maxwarp

import (
	"context"
	"io"

	"maxwarp/internal/bench"
	"maxwarp/internal/cpualgo"
	"maxwarp/internal/gengraph"
	"maxwarp/internal/gpualgo"
	"maxwarp/internal/graph"
	"maxwarp/internal/kernelcheck"
	"maxwarp/internal/obs"
	"maxwarp/internal/report"
	"maxwarp/internal/resilient"
	"maxwarp/internal/sanitize"
	"maxwarp/internal/serve"
	"maxwarp/internal/simt"
	"maxwarp/internal/traceview"
)

// Graph and edge types.
type (
	// Graph is a directed graph in compressed-sparse-row form.
	Graph = graph.CSR
	// Edge is a directed edge for graph construction.
	Edge = graph.Edge
	// VertexID identifies a vertex.
	VertexID = graph.VertexID
	// DegreeStats summarizes a degree distribution.
	DegreeStats = graph.DegreeStats
)

// Simulator types.
type (
	// Device is the simulated GPU.
	Device = simt.Device
	// DeviceConfig describes the simulated hardware.
	DeviceConfig = simt.Config
	// LaunchConfig is a kernel grid shape.
	LaunchConfig = simt.LaunchConfig
	// LaunchStats aggregates per-launch simulator counters.
	LaunchStats = simt.LaunchStats
	// Kernel is a warp program; see WarpCtx.
	Kernel = simt.Kernel
	// WarpCtx is the per-warp kernel execution context.
	WarpCtx = simt.WarpCtx
	// Tracer receives execution trace events (see Device.SetTracer).
	Tracer = simt.Tracer
	// RingTracer retains the most recent trace events in memory.
	RingTracer = simt.RingTracer
	// TraceEvent is one scheduler observation.
	TraceEvent = simt.TraceEvent
	// LaunchOpts supervise one launch: cycle deadline and progress
	// callback (see Device.LaunchWith).
	LaunchOpts = simt.LaunchOpts
	// KernelFault is the typed error describing a failed kernel launch.
	KernelFault = simt.KernelFault
	// FaultKind classifies a KernelFault.
	FaultKind = simt.FaultKind
	// FaultPlan is a seeded deterministic fault-injection schedule (see
	// Device.SetFaultPlan).
	FaultPlan = simt.FaultPlan
)

// Kernel fault kinds.
const (
	FaultOOB       = simt.FaultOOB
	FaultPanic     = simt.FaultPanic
	FaultBitFlip   = simt.FaultBitFlip
	FaultAbort     = simt.FaultAbort
	FaultCancelled = simt.FaultCancelled
)

// Device-level launch failure sentinels; test with errors.Is (they are
// returned wrapped).
var (
	// ErrDeviceLost: the simulated device failed permanently; launches
	// fail until Device.Revive.
	ErrDeviceLost = simt.ErrDeviceLost
	// ErrLaunchTimeout: the launch exceeded its cycle deadline.
	ErrLaunchTimeout = simt.ErrLaunchTimeout
	// ErrLaunchCancelled: LaunchOpts.OnProgress aborted the launch.
	ErrLaunchCancelled = simt.ErrLaunchCancelled
)

// IsTransientFault reports whether err is a transient launch failure (an
// injected bit-flip or abort) that a retry with restored buffers should
// survive.
func IsTransientFault(err error) bool { return simt.IsTransient(err) }

// Resilient execution types (fault-tolerant wrappers over the device
// algorithms).
type (
	// ResilientPolicy bounds retries/backoff and configures launch
	// supervision for the resilient runners.
	ResilientPolicy = resilient.Policy
	// ResilientOutcome records retries, observed faults, and whether the
	// result was degraded to the CPU oracle.
	ResilientOutcome = resilient.Outcome
	// ResilientBFSResult is the output of ResilientBFS.
	ResilientBFSResult = resilient.BFSResult
	// ResilientSSSPResult is the output of ResilientSSSP.
	ResilientSSSPResult = resilient.SSSPResult
	// ResilientPageRankResult is the output of ResilientPageRank.
	ResilientPageRankResult = resilient.PageRankResult
)

// Algorithm types.
type (
	// DeviceGraph is a graph resident in device memory.
	DeviceGraph = gpualgo.DeviceGraph
	// Options select the work mapping (virtual warp width K, dynamic
	// distribution, outlier deferral).
	Options = gpualgo.Options
	// BFSResult is the output of BFS.
	BFSResult = gpualgo.BFSResult
	// SSSPResult is the output of SSSP.
	SSSPResult = gpualgo.SSSPResult
	// PageRankResult is the output of PageRank.
	PageRankResult = gpualgo.PageRankResult
	// PageRankOptions extend Options with power-iteration parameters.
	PageRankOptions = gpualgo.PageRankOptions
	// CCResult is the output of ConnectedComponents.
	CCResult = gpualgo.CCResult
	// NeighborSumResult is the output of NeighborSum.
	NeighborSumResult = gpualgo.NeighborSumResult
	// SpMVResult is the output of SpMV.
	SpMVResult = gpualgo.SpMVResult
	// TriangleResult is the output of TriangleCount.
	TriangleResult = gpualgo.TriangleResult
	// KCoreResult is the output of KCore.
	KCoreResult = gpualgo.KCoreResult
	// MISResult is the output of MIS.
	MISResult = gpualgo.MISResult
	// ColoringResult is the output of GraphColoring.
	ColoringResult = gpualgo.ColoringResult
	// BCResult is the output of BetweennessCentrality.
	BCResult = gpualgo.BCResult
	// ClosenessResult is the output of ClosenessCentrality.
	ClosenessResult = gpualgo.ClosenessResult
	// SCCResult is the output of SCC.
	SCCResult = gpualgo.SCCResult
	// MSBFSResult is the output of MSBFS.
	MSBFSResult = gpualgo.MSBFSResult
	// BFSDirResult is the output of BFSDirectionOpt.
	BFSDirResult = gpualgo.BFSDirResult
	// DirOptions tune the push/pull hybrid heuristic.
	DirOptions = gpualgo.DirOptions
	// Direction selects a BFS traversal direction.
	Direction = gpualgo.Direction
	// TuneResult records an auto-tuning sweep over virtual warp widths.
	TuneResult = gpualgo.TuneResult
	// DeltaSteppingOptions tune the bucketed SSSP.
	DeltaSteppingOptions = gpualgo.DeltaSteppingOptions
)

// BFS traversal directions for DirOptions.Force.
const (
	DirPush = gpualgo.DirPush
	DirPull = gpualgo.DirPull
)

// Dynamic graphs: batched streaming edge mutations over a frozen CSR, with
// incremental repair algorithms that fix up a previous result instead of
// recomputing from scratch (see DESIGN.md §Dynamic graphs).
type (
	// GraphDelta is a mutation overlay over a frozen base CSR: batched edge
	// inserts/deletes with simple-graph semantics, compaction into a fresh
	// CSR, and rebase for sustained streams.
	GraphDelta = graph.Delta
	// EdgeMutation is one edge insert or delete in a mutation batch.
	EdgeMutation = graph.EdgeMutation
	// AppliedMutation is one effective mutation as reported by
	// GraphDelta.Apply (no-ops filtered out).
	AppliedMutation = graph.AppliedMutation
	// MutationStats classifies a batch: effective inserts/deletes plus
	// counted no-ops (duplicates, absent deletes, self-loops).
	MutationStats = graph.ApplyStats
	// DeviceDeltaGraph is a GraphDelta resident in device memory (base CSR
	// + deletion mask + extension adjacency).
	DeviceDeltaGraph = gpualgo.DeviceDeltaGraph
	// RepairInfo reports incremental-repair work: invalidated vertices,
	// seed frontier size, and device rounds.
	RepairInfo = gpualgo.RepairInfo
)

// NewGraphDelta starts a mutation overlay over base; weights (aligned with
// base.Col) make the delta weighted for incremental SSSP, nil is unweighted.
func NewGraphDelta(base *Graph, weights []int32) (*GraphDelta, error) {
	return graph.NewDelta(base, weights)
}

// UploadDelta copies the forward (out-neighbor) view of dl into device
// memory; re-upload after further Apply calls.
func UploadDelta(d *Device, dl *GraphDelta) (*DeviceDeltaGraph, error) {
	return gpualgo.UploadDelta(d, dl)
}

// UploadDeltaReverse copies the reverse (in-neighbor) view of dl into device
// memory for pull-style kernels (DeltaPageRank).
func UploadDeltaReverse(d *Device, dl *GraphDelta) (*DeviceDeltaGraph, error) {
	return gpualgo.UploadDeltaReverse(d, dl)
}

// IncrementalBFS repairs prevLevels after the applied mutation batch instead
// of recomputing: stale vertices are invalidated host-side, then a device
// frontier re-relaxes outward from the changed region. The result is
// bit-identical to a full recompute on the compacted graph. ddg may be nil
// (uploaded on demand).
func IncrementalBFS(d *Device, dl *GraphDelta, ddg *DeviceDeltaGraph, src VertexID, prevLevels []int32, applied []AppliedMutation, opts Options) (*BFSResult, RepairInfo, error) {
	return gpualgo.IncrementalBFS(d, dl, ddg, src, prevLevels, applied, opts)
}

// IncrementalSSSP repairs prevDist after the applied batch (requires a
// weighted delta); bit-identical to a full recompute on the compacted graph.
func IncrementalSSSP(d *Device, dl *GraphDelta, ddg *DeviceDeltaGraph, src VertexID, prevDist []int32, applied []AppliedMutation, opts Options) (*SSSPResult, RepairInfo, error) {
	return gpualgo.IncrementalSSSP(d, dl, ddg, src, prevDist, applied, opts)
}

// IncrementalCC repairs prevLabels after the applied batch. The delta must
// be symmetric (mutations applied in both directions) for weak components.
func IncrementalCC(d *Device, dl *GraphDelta, ddg *DeviceDeltaGraph, prevLabels []int32, applied []AppliedMutation, opts Options) (*CCResult, RepairInfo, error) {
	return gpualgo.IncrementalCC(d, dl, ddg, prevLabels, applied, opts)
}

// DeltaPageRank re-runs power iteration over the delta overlay, warm-started
// from prev ranks (nil = cold start), stopping at opts.Tolerance; rddg is
// the reverse view from UploadDeltaReverse (nil = uploaded on demand).
func DeltaPageRank(d *Device, dl *GraphDelta, rddg *DeviceDeltaGraph, prev []float32, opts PageRankOptions) (*PageRankResult, RepairInfo, error) {
	return gpualgo.DeltaPageRank(d, dl, rddg, prev, opts)
}

// Generator types.
type (
	// RMATParams are recursive-matrix quadrant probabilities.
	RMATParams = gengraph.RMATParams
	// Preset is a named synthetic stand-in for a paper dataset regime.
	Preset = gengraph.Preset
)

// Experiment harness types.
type (
	// Experiment is one runnable table/figure reproduction.
	Experiment = bench.Experiment
	// ExperimentConfig sizes the experiment suite.
	ExperimentConfig = bench.Config
	// Table is a rendered result table.
	Table = report.Table
)

// DefaultRMATParams is the canonical skewed (0.57,0.19,0.19,0.05)
// parameterization.
var DefaultRMATParams = gengraph.DefaultRMAT

// Unvisited marks unreached vertices in BFS level arrays.
const Unvisited = gpualgo.Unvisited

// InfDist marks unreachable vertices in SSSP distance arrays.
const InfDist = cpualgo.InfDist

// DefaultDeviceConfig returns the GTX 275-class simulated machine.
func DefaultDeviceConfig() DeviceConfig { return simt.DefaultConfig() }

// NewDevice creates a simulated GPU.
func NewDevice(cfg DeviceConfig) (*Device, error) { return simt.NewDevice(cfg) }

// NewGraph builds a CSR graph from an edge list.
func NewGraph(numVertices int, edges []Edge) (*Graph, error) {
	return graph.FromEdges(numVertices, edges)
}

// Stats computes degree statistics for g.
func Stats(g *Graph) DegreeStats { return graph.Stats(g) }

// SortByDegree relabels g in descending-degree order (returns graph and the
// old→new permutation) — preprocessing that evens out per-warp work for
// static thread-per-vertex mappings.
func SortByDegree(g *Graph) (*Graph, []VertexID, error) { return graph.SortByDegree(g) }

// UploadGraph validates g's CSR invariants and copies it into device
// memory; malformed graphs are rejected here instead of faulting kernels
// mid-launch.
func UploadGraph(d *Device, g *Graph) (*DeviceGraph, error) { return gpualgo.UploadChecked(d, g) }

// UploadWeightedGraph copies a graph and per-edge weights (aligned with
// g.Col) into device memory.
func UploadWeightedGraph(d *Device, g *Graph, weights []int32) (*DeviceGraph, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return gpualgo.UploadWeighted(d, g, weights)
}

// BFS runs breadth-first search on the device; Options.K selects the
// mapping (1 = thread-per-vertex baseline, >1 = virtual warp-centric).
func BFS(d *Device, dg *DeviceGraph, src VertexID, opts Options) (*BFSResult, error) {
	return gpualgo.BFS(d, dg, src, opts)
}

// SSSP runs Bellman-Ford shortest paths on the device (requires
// UploadWeightedGraph).
func SSSP(d *Device, dg *DeviceGraph, src VertexID, opts Options) (*SSSPResult, error) {
	return gpualgo.SSSP(d, dg, src, opts)
}

// DeltaStepping runs near-far bucketed SSSP on the device (requires
// UploadWeightedGraph); an alternative to SSSP's Bellman-Ford rounds.
func DeltaStepping(d *Device, dg *DeviceGraph, src VertexID, opts DeltaSteppingOptions) (*SSSPResult, error) {
	return gpualgo.DeltaStepping(d, dg, src, opts)
}

// PageRank runs pull-based power iteration on the device.
func PageRank(d *Device, g *Graph, opts PageRankOptions) (*PageRankResult, error) {
	return gpualgo.PageRank(d, g, opts)
}

// ConnectedComponents runs min-label propagation on the device (symmetrize
// directed graphs first for weak components).
func ConnectedComponents(d *Device, dg *DeviceGraph, opts Options) (*CCResult, error) {
	return gpualgo.ConnectedComponents(d, dg, opts)
}

// NeighborSum runs the gather microkernel (per-vertex sum over neighbors).
func NeighborSum(d *Device, dg *DeviceGraph, values []int32, opts Options) (*NeighborSumResult, error) {
	return gpualgo.NeighborSum(d, dg, values, opts)
}

// BFSFrontier runs queue-based (frontier) BFS — the alternative formulation
// to BFS's quadratic level scan.
func BFSFrontier(d *Device, dg *DeviceGraph, src VertexID, opts Options) (*BFSResult, error) {
	return gpualgo.BFSFrontier(d, dg, src, opts)
}

// ClosenessCentrality estimates closeness centrality from a landmark
// sample, batched through bit-parallel multi-source BFS.
func ClosenessCentrality(d *Device, g *Graph, samples int, seed uint64, opts Options) (*ClosenessResult, error) {
	return gpualgo.ClosenessCentrality(d, g, samples, seed, opts)
}

// ClosenessCentralityCPU is the host oracle over the same landmark sample.
func ClosenessCentralityCPU(g *Graph, sources []VertexID) []float64 {
	return gpualgo.ClosenessCentralityCPU(g, sources)
}

// SCC decomposes a directed graph into strongly connected components on the
// device (Forward-Backward-Trim).
func SCC(d *Device, g *Graph, opts Options) (*SCCResult, error) {
	return gpualgo.SCC(d, g, opts)
}

// SCCCPU is the Tarjan host oracle (canonical min-vertex labels).
func SCCCPU(g *Graph) []int32 { return cpualgo.SCC(g) }

// MSBFS runs up to 31 breadth-first searches simultaneously with
// bit-parallel frontiers; batching shares adjacency scans across sources.
func MSBFS(d *Device, dg *DeviceGraph, sources []VertexID, opts Options) (*MSBFSResult, error) {
	return gpualgo.MSBFS(d, dg, sources, opts)
}

// MSBFSCPU is the host oracle for MSBFS (independent BFS per source).
func MSBFSCPU(g *Graph, sources []VertexID) [][]int32 { return gpualgo.MSBFSCPU(g, sources) }

// SpMV computes y = A·x on the device; Options.K interpolates between
// scalar CSR (K=1) and vector CSR (K=warp width).
func SpMV(d *Device, dg *DeviceGraph, vals, x []float32, opts Options) (*SpMVResult, error) {
	return gpualgo.SpMV(d, dg, vals, x, opts)
}

// SpMVCPU is the host oracle for SpMV (compare with a small tolerance:
// float32 summation order differs).
func SpMVCPU(g *Graph, vals, x []float32) []float32 {
	return gpualgo.SpMVCPU(g, vals, x)
}

// BFSDirectionOpt runs direction-optimizing (push/pull hybrid) BFS.
func BFSDirectionOpt(d *Device, g *Graph, src VertexID, opts DirOptions) (*BFSDirResult, error) {
	return gpualgo.BFSDirectionOpt(d, g, src, opts)
}

// TriangleCount counts triangles on the device (needs an undirected simple
// graph with sorted adjacency, e.g. from Graph.Symmetrize).
func TriangleCount(d *Device, g *Graph, opts Options) (*TriangleResult, error) {
	return gpualgo.TriangleCount(d, g, opts)
}

// TriangleCountCPU is the host oracle for TriangleCount.
func TriangleCountCPU(g *Graph) ([]int32, int64) { return gpualgo.TriangleCountCPU(g) }

// KCore computes k-core membership on the device (upload the symmetrized
// graph).
func KCore(d *Device, dg *DeviceGraph, k int32, opts Options) (*KCoreResult, error) {
	return gpualgo.KCore(d, dg, k, opts)
}

// KCoreCPU is the host oracle for KCore.
func KCoreCPU(g *Graph, k int32) ([]bool, int) { return gpualgo.KCoreCPU(g, k) }

// MIS computes a maximal independent set on the device (upload the
// symmetrized graph); the result is deterministic given the priority seed.
func MIS(d *Device, dg *DeviceGraph, seed uint64, opts Options) (*MISResult, error) {
	return gpualgo.MIS(d, dg, seed, opts)
}

// MISCPU is the host oracle for MIS (greedy in priority order).
func MISCPU(g *Graph, seed uint64) ([]bool, int) { return gpualgo.MISCPU(g, seed) }

// GraphColoring computes a proper vertex coloring on the device
// (Jones–Plassmann rounds; upload the symmetrized graph).
func GraphColoring(d *Device, dg *DeviceGraph, seed uint64, opts Options) (*ColoringResult, error) {
	return gpualgo.GraphColoring(d, dg, seed, opts)
}

// ValidColoring verifies a proper coloring (error = first violation).
func ValidColoring(g *Graph, colors []int32) error { return gpualgo.ValidColoring(g, colors) }

// GreedyColoringCPU is the sequential greedy reference coloring.
func GreedyColoringCPU(g *Graph) ([]int32, int32) { return gpualgo.GreedyColoringCPU(g) }

// BetweennessCentrality runs Brandes' algorithm on the device for the given
// sources (all vertices for exact BC).
func BetweennessCentrality(d *Device, g *Graph, sources []VertexID, opts Options) (*BCResult, error) {
	return gpualgo.BetweennessCentrality(d, g, sources, opts)
}

// BetweennessCentralityCPU is the host Brandes oracle.
func BetweennessCentralityCPU(g *Graph, sources []VertexID) []float64 {
	return gpualgo.BetweennessCentralityCPU(g, sources)
}

// CPU oracles / comparison series.

// BFSCPU is the sequential CPU reference.
func BFSCPU(g *Graph, src VertexID) []int32 { return cpualgo.BFSSequential(g, src) }

// BFSCPUParallel is the multicore CPU reference (workers<=0 = GOMAXPROCS).
func BFSCPUParallel(g *Graph, src VertexID, workers int) []int32 {
	return cpualgo.BFSParallel(g, src, workers)
}

// SSSPCPU is the Dijkstra CPU reference.
func SSSPCPU(g *Graph, weights []int32, src VertexID) []int32 {
	return cpualgo.SSSPDijkstra(g, weights, src)
}

// Generators.

// RMAT generates a skewed recursive-matrix graph with 2^scale vertices.
func RMAT(scale, edgeFactor int, p RMATParams, seed uint64) (*Graph, error) {
	return gengraph.RMAT(scale, edgeFactor, p, seed)
}

// UniformRandom generates a G(n,m)-style uniform random directed graph.
func UniformRandom(n, m int, seed uint64) (*Graph, error) {
	return gengraph.UniformRandom(n, m, seed)
}

// Mesh2D generates a bidirectional rows×cols grid (road-network regime).
func Mesh2D(rows, cols int) (*Graph, error) { return gengraph.Mesh2D(rows, cols) }

// EdgeWeights returns deterministic positive weights aligned with g.Col.
func EdgeWeights(g *Graph, maxWeight int32, seed uint64) []int32 {
	return gengraph.EdgeWeights(g, maxWeight, seed)
}

// Presets returns the standard workload suite (most skewed first).
func Presets() []Preset { return gengraph.Presets() }

// ChungLu generates a power-law graph with explicit exponent gamma.
func ChungLu(n int, avgDegree, gamma float64, seed uint64) (*Graph, error) {
	return gengraph.ChungLu(n, avgDegree, gamma, seed)
}

// ExtractLargestWCC trims g to its largest weakly connected component
// (returns the subgraph and the old→new id map, -1 = dropped).
func ExtractLargestWCC(g *Graph) (*Graph, []VertexID, error) { return graph.ExtractLargestWCC(g) }

// AutoTuneBFS sweeps BFS over all virtual warp widths and reports the best.
func AutoTuneBFS(cfg DeviceConfig, g *Graph, src VertexID, opts Options) (*TuneResult, error) {
	return gpualgo.AutoTuneBFS(cfg, g, src, opts)
}

// AutoTuneNeighborSum sweeps the cheap gather probe to pick K for a graph.
func AutoTuneNeighborSum(cfg DeviceConfig, g *Graph, opts Options) (*TuneResult, error) {
	return gpualgo.AutoTuneNeighborSum(cfg, g, opts)
}

// ReadDIMACS parses a DIMACS shortest-path (.gr) file into a graph plus
// per-edge weights aligned with Graph.Col.
func ReadDIMACS(r io.Reader) (*Graph, []int32, error) { return graph.ReadDIMACS(r) }

// WriteDIMACS writes a weighted graph in the DIMACS shortest-path format.
func WriteDIMACS(w io.Writer, g *Graph, weights []int32) error {
	return graph.WriteDIMACS(w, g, weights)
}

// Resilient execution: device algorithms wrapped with bounded retry on
// transient faults (checkpoint/restore between iterations) and graceful
// degradation to the CPU oracle, tagged Outcome.Degraded.

// ResilientBFS runs fault-tolerant BFS: transient kernel faults are retried
// per level from a checkpoint; permanent faults (device loss, kernel bugs)
// or an exhausted retry budget degrade to the CPU oracle.
func ResilientBFS(d *Device, g *Graph, src VertexID, opts Options, pol ResilientPolicy) (*ResilientBFSResult, error) {
	return resilient.BFS(d, g, src, opts, pol)
}

// ResilientSSSP runs fault-tolerant Bellman-Ford shortest paths.
func ResilientSSSP(d *Device, g *Graph, weights []int32, src VertexID, opts Options, pol ResilientPolicy) (*ResilientSSSPResult, error) {
	return resilient.SSSP(d, g, weights, src, opts, pol)
}

// ResilientPageRank runs fault-tolerant power iteration.
func ResilientPageRank(d *Device, g *Graph, opts PageRankOptions, pol ResilientPolicy) (*ResilientPageRankResult, error) {
	return resilient.PageRank(d, g, opts, pol)
}

// RunResilient executes attempt under pol's retry loop: transient errors
// are retried with exponential backoff, then fallback (if non-nil) supplies
// the degraded answer. attempt receives the 1-based attempt number.
func RunResilient[T any](pol ResilientPolicy, attempt func(try int) (T, error), fallback func() (T, error)) (T, *ResilientOutcome, error) {
	return resilient.Run(pol, attempt, fallback)
}

// Experiments.

// Experiments returns every table/figure reproduction in index order.
func Experiments() []Experiment { return bench.All() }

// ExperimentByID looks up one experiment ("E1".."E10", "A1", "A2").
func ExperimentByID(id string) (Experiment, error) { return bench.ByID(id) }

// Observability: sharded counters, sampling tracer, and exporters (see
// DESIGN.md §Observability).
type (
	// Metrics is a registry of per-SM sharded event counters; attach one
	// via Options.Metrics to count traversal events without forcing the
	// sequential fallback.
	Metrics = obs.Metrics
	// MetricCounter is one lock-free sharded counter in a Metrics registry.
	MetricCounter = obs.Counter
	// SamplingTracer is the parallel-safe bounded tracer (implements
	// ParallelTracer, so ParallelSMs launches keep the fast path).
	SamplingTracer = obs.SamplingTracer
	// ParallelTracer marks a Tracer safe for concurrent per-SM delivery.
	ParallelTracer = simt.ParallelTracer
	// LaunchProfile holds the optional per-launch histograms (see
	// Device.SetProfiling and LaunchStats.Profile).
	LaunchProfile = simt.LaunchProfile
	// MetricFamily is one named metric in the Prometheus text exposition.
	MetricFamily = report.MetricFamily
)

// Kernel sanitizer: the simulator's cuda-memcheck/racecheck/synccheck
// analogue. Attach with Device.SetSanitizer and enable per device
// (DeviceConfig.Sanitize) or per launch (LaunchOpts.Sanitize); sanitized
// launches run on the sequential event loop and report identical
// LaunchStats.Cycles. See docs/PROGRAMMING.md §Kernel discipline.
type (
	// KernelSanitizer is the standard hazard-detecting sanitizer: global and
	// shared-memory race detection, out-of-bounds and uninitialized-read
	// checking, and barrier-divergence checking, with deduplicated reports.
	KernelSanitizer = sanitize.Sanitizer
	// SanitizerHook is the low-level observation interface a custom
	// sanitizer implements (Device.SetSanitizer accepts any SanitizerHook).
	SanitizerHook = simt.Sanitizer
	// SanitizerDiagnostic is one deduplicated finding.
	SanitizerDiagnostic = sanitize.Diagnostic
	// SanitizerSeverity ranks findings (SeverityInfo < SeverityError).
	SanitizerSeverity = sanitize.Severity
)

// Sanitizer finding severities.
const (
	// SeverityInfo marks benign or by-design findings (same-value racy
	// writes, cross-launch stale reads under the frozen-snapshot model).
	SeverityInfo = sanitize.SeverityInfo
	// SeverityError marks genuine hazards (conflicting racy writes,
	// out-of-bounds, uninitialized reads, divergent barriers).
	SeverityError = sanitize.SeverityError
)

// NewKernelSanitizer returns an empty sanitizer ready for
// Device.SetSanitizer; its state persists across launches until Reset.
func NewKernelSanitizer() *KernelSanitizer { return sanitize.NewSanitizer() }

// NewMetrics returns a counter registry sharded for numSMs SMs.
func NewMetrics(numSMs int) *Metrics { return obs.NewMetrics(numSMs) }

// NewSamplingTracer returns a parallel-safe tracer keeping 1-in-every
// sampled instruction events per SM in rings of capPerSM events.
func NewSamplingTracer(numSMs int, every int64, capPerSM int) *SamplingTracer {
	return obs.NewSamplingTracer(numSMs, every, capPerSM)
}

// ExportPromText renders launch stats (plus optional registry counters) as
// Prometheus text exposition.
func ExportPromText(prefix string, stats *LaunchStats, m *Metrics, perSM bool) (string, error) {
	return obs.ExportPromText(prefix, stats, m, perSM)
}

// ChromeTrace renders trace events as Chrome trace_event JSON (load in
// chrome://tracing or Perfetto).
func ChromeTrace(events []TraceEvent) ([]byte, error) { return traceview.ChromeTrace(events) }

// Service layer: the fault-tolerant analytics daemon behind `maxwarp
// serve` (see docs/SERVICE.md).
type (
	// AnalyticsServer multiplexes concurrent graph queries over a pool of
	// simulated devices with admission control, tenant quotas, deadlines,
	// per-device circuit breakers, a result cache, and CPU-oracle
	// degradation. Construct with NewAnalyticsServer, call Start, mount
	// Handler on an http.Server, and Shutdown to drain.
	AnalyticsServer = serve.Server
	// AnalyticsConfig configures an AnalyticsServer; the zero value of
	// every field gets a sensible default except Graphs, which is
	// required.
	AnalyticsConfig = serve.Config
	// ServeGraphSpec names one pre-loaded graph: a generator preset and
	// scale, or a DIMACS file.
	ServeGraphSpec = serve.GraphSpec
	// QueryRequest is the POST /v1/query body.
	QueryRequest = serve.QueryRequest
	// QueryResponse is the query reply: engine, degradation/cache flags,
	// retry and fault log, timings, and the result payload.
	QueryResponse = serve.QueryResponse
	// TenantQuota is a per-tenant token-bucket rate limit.
	TenantQuota = serve.TenantQuota
	// LoadOptions drive a synthetic query mix against a running server.
	LoadOptions = serve.LoadOptions
	// LoadReport summarizes a load test: codes, shed reasons, degraded and
	// cached counts, latency percentiles.
	LoadReport = serve.LoadReport
)

// NewAnalyticsServer builds a server and eagerly loads its graphs.
func NewAnalyticsServer(cfg AnalyticsConfig) (*AnalyticsServer, error) { return serve.New(cfg) }

// ParseServeGraphSpec parses "name=Preset:scale[:seed]" or "name=@file.gr".
func ParseServeGraphSpec(s string) (ServeGraphSpec, error) { return serve.ParseGraphSpec(s) }

// LoadTest drives a synthetic weighted query mix against a running
// analytics server and reports shed/degradation counts and latency
// percentiles; parse the mix with serve syntax "algo@graph[=weight],...".
func LoadTest(ctx context.Context, opts LoadOptions) (*LoadReport, error) {
	return serve.Load(ctx, opts)
}

// ParseQueryMix parses a weighted mix spec "algo@graph[=weight],..." for
// LoadOptions.Mix.
func ParseQueryMix(s string) ([]serve.MixItem, error) { return serve.ParseMix(s) }

// Static warp-efficiency analysis (internal/kernelcheck): a per-kernel CFG
// plus lane-taint dataflow predicting the paper's pathologies — divergence,
// uncoalesced access, atomic serialization — statically, cross-validated
// against LaunchStats counters by the warplint test harness. See
// docs/PROGRAMMING.md "Static warp-efficiency analysis".
type (
	// KernelVerdict is one kernel's static warp-efficiency summary
	// (divergence/loops/coalesce/atomics/barriers classes plus finding
	// count).
	KernelVerdict = kernelcheck.KernelVerdict
	// LintDiagnostic is one static-analysis finding (file:line, rule,
	// message).
	LintDiagnostic = kernelcheck.Diagnostic
)

// KernelVerdicts statically analyzes every kernel in a source directory
// and returns per-kernel warp-efficiency verdicts (the `maxwarp lint`
// table).
func KernelVerdicts(dir string, includeTests bool) ([]KernelVerdict, error) {
	return kernelcheck.DirVerdicts(dir, includeTests)
}

// LintSource runs the kernel-discipline analyzers over one Go source file's
// contents and returns the unsuppressed findings.
func LintSource(filename string, src []byte) ([]LintDiagnostic, error) {
	return kernelcheck.CheckSource(filename, src)
}
