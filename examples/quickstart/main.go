// Quickstart: generate a skewed graph, run BFS in both mappings, and see
// the paper's headline effect — the thread-per-vertex baseline stalls on
// hub vertices while the virtual warp-centric mapping spreads them across
// SIMD lanes.
package main

import (
	"fmt"
	"log"

	"maxwarp"
)

func main() {
	// A scale-12 RMAT graph: 4096 vertices, ~64k edges, power-law degrees.
	g, err := maxwarp.RMAT(12, 16, maxwarp.DefaultRMATParams, 42)
	if err != nil {
		log.Fatal(err)
	}
	s := maxwarp.Stats(g)
	fmt.Printf("graph: %s\n\n", s)

	dev, err := maxwarp.NewDevice(maxwarp.DefaultDeviceConfig())
	if err != nil {
		log.Fatal(err)
	}
	dg, err := maxwarp.UploadGraph(dev, g)
	if err != nil {
		log.Fatal(err)
	}

	// Baseline: one thread per vertex (K=1).
	base, err := maxwarp.BFS(dev, dg, 0, maxwarp.Options{K: 1})
	if err != nil {
		log.Fatal(err)
	}
	// Virtual warp-centric: one 32-wide warp per vertex (K=32).
	warp, err := maxwarp.BFS(dev, dg, 0, maxwarp.Options{K: 32})
	if err != nil {
		log.Fatal(err)
	}

	// Same answer...
	for v := range base.Levels {
		if base.Levels[v] != warp.Levels[v] {
			log.Fatalf("mappings disagree at vertex %d", v)
		}
	}
	// ...very different cost.
	fmt.Printf("baseline (K=1):      %10d cycles   simd util %.2f\n",
		base.Stats.Cycles, base.Stats.SIMDUtilization())
	fmt.Printf("warp-centric (K=32): %10d cycles   simd util %.2f\n",
		warp.Stats.Cycles, warp.Stats.SIMDUtilization())
	fmt.Printf("speedup: %.2fx   (BFS depth %d, %d vertices reached)\n",
		float64(base.Stats.Cycles)/float64(warp.Stats.Cycles),
		warp.Depth, reached(warp.Levels))
}

func reached(levels []int32) int {
	n := 0
	for _, l := range levels {
		if l != maxwarp.Unvisited {
			n++
		}
	}
	return n
}
