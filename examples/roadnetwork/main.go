// Road-network regime: the other end of the paper's spectrum. On a uniform
// low-degree mesh there are no hub vertices to balance, so wide virtual
// warps only waste lanes — the best K is small and the baseline is
// competitive. The example also runs weighted shortest paths (SSSP), the
// natural road-network query, and cross-checks it against the CPU oracle.
package main

import (
	"fmt"
	"log"

	"maxwarp"
)

func main() {
	// A 64x64 grid with bidirectional streets.
	g, err := maxwarp.Mesh2D(64, 64)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("road network: %s\n\n", maxwarp.Stats(g))

	fmt.Println("BFS cost vs virtual warp width (expect small K to win here):")
	var bestK int
	var bestCycles int64
	for _, k := range []int{1, 2, 4, 8, 16, 32} {
		dev, err := maxwarp.NewDevice(maxwarp.DefaultDeviceConfig())
		if err != nil {
			log.Fatal(err)
		}
		dg, err := maxwarp.UploadGraph(dev, g)
		if err != nil {
			log.Fatal(err)
		}
		res, err := maxwarp.BFS(dev, dg, 0, maxwarp.Options{K: k})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  K=%-2d  %9d cycles  useful util %.2f\n",
			k, res.Stats.Cycles, res.Stats.UsefulUtilization())
		if bestCycles == 0 || res.Stats.Cycles < bestCycles {
			bestK, bestCycles = k, res.Stats.Cycles
		}
	}
	fmt.Printf("best width on this regular graph: K=%d\n\n", bestK)

	// Shortest travel times from the depot at the grid corner.
	weights := maxwarp.EdgeWeights(g, 30, 7) // travel minutes per street
	dev, err := maxwarp.NewDevice(maxwarp.DefaultDeviceConfig())
	if err != nil {
		log.Fatal(err)
	}
	wdg, err := maxwarp.UploadWeightedGraph(dev, g, weights)
	if err != nil {
		log.Fatal(err)
	}
	res, err := maxwarp.SSSP(dev, wdg, 0, maxwarp.Options{K: bestK})
	if err != nil {
		log.Fatal(err)
	}
	oracle := maxwarp.SSSPCPU(g, weights, 0)
	far, farDist := 0, int32(0)
	for v, d := range res.Dist {
		if d != oracle[v] {
			log.Fatalf("device SSSP disagrees with Dijkstra at vertex %d", v)
		}
		if d < maxwarp.InfDist && d > farDist {
			far, farDist = v, d
		}
	}
	fmt.Printf("SSSP from depot 0 (K=%d): %d relaxation rounds, %d cycles\n",
		bestK, res.Iterations, res.Stats.Cycles)
	fmt.Printf("farthest intersection: %d at %d minutes (matches CPU Dijkstra)\n",
		far, farDist)
}
