// Custom kernel: using the simulator's warp-level API directly (the same
// API all bundled algorithms are built on — see docs/PROGRAMMING.md). The
// kernel computes a degree histogram with the canonical CUDA privatization
// pattern: ballot-aggregated per-warp counts go into per-warp private rows
// of shared memory (no races by construction), a block barrier, then one
// warp reduces the rows and flushes to global memory with atomics.
package main

import (
	"fmt"
	"log"
	"math/bits"

	"maxwarp"
)

const bins = 16

func degreeBin(deg int32) int32 {
	b := int32(0)
	for d := deg; d > 1 && b < bins-1; d >>= 1 {
		b++
	}
	return b
}

func main() {
	g, err := maxwarp.RMAT(12, 8, maxwarp.DefaultRMATParams, 99)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %s\n\n", maxwarp.Stats(g))

	dev, err := maxwarp.NewDevice(maxwarp.DefaultDeviceConfig())
	if err != nil {
		log.Fatal(err)
	}
	n := g.NumVertices()
	rowPtr := dev.UploadI32("rowptr", g.RowPtr)
	hist := dev.AllocI32("hist", bins)

	const threadsPerBlock = 256
	warpsPerBlock := threadsPerBlock / dev.Config().WarpWidth

	kernel := func(w *maxwarp.WarpCtx) {
		// Per-warp private rows: warp i owns sh[i*bins : (i+1)*bins].
		sh := w.SharedI32("bins", bins*warpsPerBlock)
		tid := w.GlobalThreadIDs()
		lane := w.LaneIDs()
		myRow := int32(w.WarpInBlock() * bins)

		// Phase 1: classify this warp's vertices and aggregate with ballots.
		bin := w.ConstI32(-1)
		w.If(func(l int) bool { return tid[l] < int32(n) }, func() {
			lo := w.VecI32()
			hi := w.VecI32()
			w.LoadI32(rowPtr, tid, lo)
			next := w.VecI32()
			w.Apply(1, func(l int) { next[l] = tid[l] + 1 })
			w.LoadI32(rowPtr, next, hi)
			w.Apply(2, func(l int) { bin[l] = degreeBin(hi[l] - lo[l]) })
		}, nil)
		for b := int32(0); b < bins; b++ {
			mask := w.Ballot(func(l int) bool { return bin[l] == b })
			cnt := int32(bits.OnesCount64(mask))
			if cnt == 0 {
				continue
			}
			// Lane 0 owns the warp's private row: no races anywhere.
			w.If(func(l int) bool { return lane[l] == 0 }, func() {
				idx := w.ConstI32(myRow + b)
				cur := w.VecI32()
				w.LoadSharedI32(sh, idx, cur)
				w.Apply(1, func(l int) { cur[l] += cnt })
				w.StoreSharedI32(sh, idx, cur)
			}, nil)
		}
		w.SyncThreads()

		// Phase 2: warp 0 sums the private rows and flushes to global.
		if w.WarpInBlock() == 0 {
			w.If(func(l int) bool { return lane[l] < bins }, func() {
				total := w.ConstI32(0)
				idx := w.VecI32()
				row := w.VecI32()
				for r := 0; r < warpsPerBlock; r++ {
					w.Apply(1, func(l int) { idx[l] = int32(r*bins) + lane[l] })
					w.LoadSharedI32(sh, idx, row)
					w.Apply(1, func(l int) { total[l] += row[l] })
				}
				w.AtomicAddI32(hist, lane, total, nil)
			}, nil)
		}
	}

	stats, err := dev.Launch(maxwarp.LaunchConfig{
		Blocks:          (n + threadsPerBlock - 1) / threadsPerBlock,
		ThreadsPerBlock: threadsPerBlock,
	}, kernel)
	if err != nil {
		log.Fatal(err)
	}

	// Exact host-side count for verification.
	exact := make([]int64, bins)
	for v := 0; v < n; v++ {
		exact[degreeBin(g.Degree(int32(v)))]++
	}
	fmt.Println("bin  degree-range      kernel   exact")
	lo := 1
	for b := 0; b < bins; b++ {
		rangeLo := lo
		if b == 0 {
			rangeLo = 0 // bin 0 also holds isolated (degree-0) vertices
		}
		marker := ""
		if int64(hist.Data()[b]) != exact[b] {
			marker = "  MISMATCH"
		}
		fmt.Printf("%-4d %6d-%-8d %8d %7d%s\n", b, rangeLo, lo*2-1, hist.Data()[b], exact[b], marker)
		lo *= 2
	}
	fmt.Printf("\nlaunch: %s\n", stats)
}
