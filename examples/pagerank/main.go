// PageRank: the virtual warp-centric method applied beyond BFS. The pull
// kernel gathers rank contributions over each vertex's in-neighbors — the
// same irregular adjacency-scan shape — so the mapping trade-off carries
// over unchanged. The example ranks a citation-network-like graph and
// reports the speedup of the warp-centric pull kernel.
package main

import (
	"fmt"
	"log"
	"sort"

	"maxwarp"
)

func main() {
	g, err := maxwarp.RMAT(12, 8, maxwarp.DefaultRMATParams, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("citation graph: %s\n\n", maxwarp.Stats(g))

	run := func(k int) *maxwarp.PageRankResult {
		dev, err := maxwarp.NewDevice(maxwarp.DefaultDeviceConfig())
		if err != nil {
			log.Fatal(err)
		}
		res, err := maxwarp.PageRank(dev, g, maxwarp.PageRankOptions{
			Options:    maxwarp.Options{K: k},
			Iterations: 15,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}
	base := run(1)
	warp := run(32)
	fmt.Printf("baseline pull (K=1):      %10d cycles\n", base.Stats.Cycles)
	fmt.Printf("warp-centric pull (K=32): %10d cycles  (%.2fx)\n\n",
		warp.Stats.Cycles, float64(base.Stats.Cycles)/float64(warp.Stats.Cycles))

	type ranked struct {
		v    int
		rank float32
	}
	top := make([]ranked, len(warp.Ranks))
	for v, r := range warp.Ranks {
		top[v] = ranked{v, r}
	}
	sort.Slice(top, func(i, j int) bool { return top[i].rank > top[j].rank })
	fmt.Println("top 10 vertices by rank:")
	for i := 0; i < 10 && i < len(top); i++ {
		fmt.Printf("  #%-2d vertex %-6d rank %.5f  (in-degree matters, not just out)\n",
			i+1, top[i].v, top[i].rank)
	}
}
