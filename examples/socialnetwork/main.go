// Social-network tuning walkthrough: the workload the paper's introduction
// motivates. On a LiveJournal-like power-law graph, sweep the virtual warp
// width K, then layer on the paper's two auxiliary techniques (dynamic
// workload distribution and outlier deferral) to squeeze out the stragglers.
package main

import (
	"fmt"
	"log"

	"maxwarp"
)

func main() {
	const scale = 12
	var lj maxwarp.Preset
	for _, p := range maxwarp.Presets() {
		if p.Name == "LiveJournal-like" {
			lj = p
		}
	}
	g, err := lj.Build(scale, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %s — %s\n", lj.Name, lj.Regime)
	fmt.Printf("graph:    %s\n\n", maxwarp.Stats(g))

	run := func(label string, opts maxwarp.Options) int64 {
		dev, err := maxwarp.NewDevice(maxwarp.DefaultDeviceConfig())
		if err != nil {
			log.Fatal(err)
		}
		dg, err := maxwarp.UploadGraph(dev, g)
		if err != nil {
			log.Fatal(err)
		}
		res, err := maxwarp.BFS(dev, dg, 0, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %10d cycles  util %.2f  imbalanceCV %.2f  deferred %d\n",
			label, res.Stats.Cycles, res.Stats.SIMDUtilization(),
			res.Stats.WarpImbalanceCV(), res.Deferred)
		return res.Stats.Cycles
	}

	fmt.Println("step 1 — pick the virtual warp width:")
	base := run("K=1 (baseline)", maxwarp.Options{K: 1})
	var bestK int
	var bestCycles int64
	for _, k := range []int{2, 4, 8, 16, 32} {
		c := run(fmt.Sprintf("K=%d", k), maxwarp.Options{K: k})
		if bestCycles == 0 || c < bestCycles {
			bestK, bestCycles = k, c
		}
	}
	fmt.Printf("\nbest width K=%d: %.2fx over baseline\n\n", bestK,
		float64(base)/float64(bestCycles))

	fmt.Println("step 2 — residual imbalance techniques at the best K:")
	run("  + dynamic distribution", maxwarp.Options{K: bestK, Dynamic: true})
	run("  + defer outliers (>128)", maxwarp.Options{K: bestK, DeferThreshold: 128})
	run("  + both", maxwarp.Options{K: bestK, Dynamic: true, DeferThreshold: 128})
}
