// Graph-analytics pipeline: the library applied the way a downstream user
// would — run several analytics over one social graph, all on the simulated
// GPU with the warp-centric mapping, cross-checked against CPU oracles:
//
//   - triangle counting (clustering structure),
//   - k-core decomposition (dense community cores),
//   - maximal independent set (scheduling/seeding),
//   - connected components (reachability islands).
package main

import (
	"fmt"
	"log"

	"maxwarp"
)

func main() {
	raw, err := maxwarp.RMAT(11, 8, maxwarp.DefaultRMATParams, 2026)
	if err != nil {
		log.Fatal(err)
	}
	// Analytics below want an undirected simple graph.
	g, err := raw.Symmetrize()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("social graph (undirected): %s\n\n", maxwarp.Stats(g))

	dev, err := maxwarp.NewDevice(maxwarp.DefaultDeviceConfig())
	if err != nil {
		log.Fatal(err)
	}
	dg, err := maxwarp.UploadGraph(dev, g)
	if err != nil {
		log.Fatal(err)
	}
	opts := maxwarp.Options{K: 32}

	tri, err := maxwarp.TriangleCount(dev, g, opts)
	if err != nil {
		log.Fatal(err)
	}
	if _, want := maxwarp.TriangleCountCPU(g); tri.Total != want {
		log.Fatalf("triangle count mismatch: %d vs CPU %d", tri.Total, want)
	}
	fmt.Printf("triangles:        %8d        (%.2f Mcycles)\n",
		tri.Total, float64(tri.Stats.Cycles)/1e6)

	for _, k := range []int32{2, 4, 8} {
		core, err := maxwarp.KCore(dev, dg, k, opts)
		if err != nil {
			log.Fatal(err)
		}
		if _, want := maxwarp.KCoreCPU(g, k); core.Remaining != want {
			log.Fatalf("%d-core mismatch: %d vs CPU %d", k, core.Remaining, want)
		}
		fmt.Printf("%d-core size:      %8d vertices (%d peeling rounds)\n",
			k, core.Remaining, core.Iterations)
	}

	mis, err := maxwarp.MIS(dev, dg, 7, opts)
	if err != nil {
		log.Fatal(err)
	}
	if _, want := maxwarp.MISCPU(g, 7); mis.Size != want {
		log.Fatalf("MIS mismatch: %d vs CPU %d", mis.Size, want)
	}
	fmt.Printf("max indep. set:   %8d vertices (%d rounds)\n", mis.Size, mis.Iterations)

	cc, err := maxwarp.ConnectedComponents(dev, dg, opts)
	if err != nil {
		log.Fatal(err)
	}
	comps := map[int32]int{}
	for _, l := range cc.Labels {
		comps[l]++
	}
	largest := 0
	for _, size := range comps {
		if size > largest {
			largest = size
		}
	}
	fmt.Printf("components:       %8d        (largest %d vertices)\n\n", len(comps), largest)
	fmt.Println("all results verified against CPU oracles ✓")
}
