#!/usr/bin/env bash
# serve_smoke.sh — end-to-end smoke of the analytics daemon under chaos.
#
# Builds the maxwarp binary, starts `maxwarp serve` on an ephemeral port
# with fault injection (device 0 keeps dying, device 1 throws transient
# aborts), drives a short saturating load test with tight deadlines, and
# asserts the robustness contract:
#   * no 5xx responses,
#   * some load was shed (429 + Retry-After),
#   * some requests degraded to the CPU oracle,
# then SIGTERMs the daemon and requires a clean drain.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

go build -o "$workdir/maxwarp" ./cmd/maxwarp

"$workdir/maxwarp" serve \
  -addr 127.0.0.1:0 \
  -addr-file "$workdir/addr" \
  -devices 2 \
  -graphs "wiki=WikiTalk-like:9,road=RoadNet-like:9" \
  -queue 8 \
  -breaker-cooldown 100ms \
  -inject "0:loss=6000;1:abort=7" \
  2>"$workdir/serve.log" &
server_pid=$!

fail() {
  echo "serve_smoke: $1" >&2
  echo "--- server log ---" >&2
  cat "$workdir/serve.log" >&2 || true
  kill "$server_pid" 2>/dev/null || true
  exit 1
}

for _ in $(seq 1 100); do
  [ -s "$workdir/addr" ] && break
  kill -0 "$server_pid" 2>/dev/null || fail "server exited before binding"
  sleep 0.1
done
[ -s "$workdir/addr" ] || fail "server never wrote its address"
url="http://$(cat "$workdir/addr")"

"$workdir/maxwarp" loadtest \
  -url "$url" \
  -mix "bfs@wiki=3,pagerank@wiki=1,cc@road=1,sssp@road=1" \
  -duration 6s -qps 60 \
  -deadline-min 30ms -deadline-max 800ms \
  -wait-ready 5s \
  -assert-smoke \
  || fail "loadtest smoke assertions failed"

kill -TERM "$server_pid"
for _ in $(seq 1 100); do
  kill -0 "$server_pid" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$server_pid" 2>/dev/null; then
  fail "server did not drain within 10s of SIGTERM"
fi
wait "$server_pid" || fail "server exited non-zero"
grep -q "drained cleanly" "$workdir/serve.log" || fail "server log missing clean-drain marker"

echo "serve_smoke: OK"
