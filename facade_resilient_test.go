package maxwarp_test

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"maxwarp"
)

// Pins the robustness surface of the facade: fault-plan injection, the
// typed-error re-exports, and the resilient wrappers.

func TestFacadeResilientBFSSurvivesAborts(t *testing.T) {
	g, err := maxwarp.RMAT(8, 8, maxwarp.DefaultRMATParams, 11)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := maxwarp.NewDevice(maxwarp.DefaultDeviceConfig())
	if err != nil {
		t.Fatal(err)
	}
	dev.SetFaultPlan(&maxwarp.FaultPlan{Seed: 5, AbortEvery: 2})
	res, err := maxwarp.ResilientBFS(dev, g, 0, maxwarp.Options{K: 8},
		maxwarp.ResilientPolicy{MaxRetries: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome.Degraded {
		t.Fatalf("degraded under transient-only faults: %v", res.Outcome.FallbackCause)
	}
	if res.Outcome.Retries == 0 {
		t.Fatal("abort=2 schedule produced no retries")
	}

	dev.SetFaultPlan(nil)
	plain, err := maxwarp.ResilientBFS(dev, g, 0, maxwarp.Options{K: 8}, maxwarp.ResilientPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	for v := range plain.Levels {
		if plain.Levels[v] != res.Levels[v] {
			t.Fatalf("vertex %d: level %d under faults, %d without", v, res.Levels[v], plain.Levels[v])
		}
	}
}

func TestFacadeTypedErrorExports(t *testing.T) {
	if !maxwarp.IsTransientFault(&maxwarp.KernelFault{Kind: maxwarp.FaultAbort}) {
		t.Fatal("FaultAbort not transient through facade")
	}
	if maxwarp.IsTransientFault(&maxwarp.KernelFault{Kind: maxwarp.FaultOOB}) {
		t.Fatal("FaultOOB transient through facade")
	}
	wrapped := fmt.Errorf("launch: %w", maxwarp.ErrDeviceLost)
	if !errors.Is(wrapped, maxwarp.ErrDeviceLost) {
		t.Fatal("ErrDeviceLost does not survive wrapping")
	}
	if maxwarp.IsTransientFault(wrapped) {
		t.Fatal("device loss reported transient")
	}
}

func TestFacadeRunResilientGeneric(t *testing.T) {
	calls := 0
	v, out, err := maxwarp.RunResilient(
		maxwarp.ResilientPolicy{MaxRetries: 2, Sleep: func(time.Duration) {}},
		func(try int) (int, error) {
			calls++
			if try < 2 {
				return 0, &maxwarp.KernelFault{Kind: maxwarp.FaultAbort}
			}
			return 42, nil
		},
		nil)
	if err != nil {
		t.Fatal(err)
	}
	if v != 42 || calls != 2 || out.Retries != 1 {
		t.Fatalf("v=%d calls=%d retries=%d", v, calls, out.Retries)
	}
}
