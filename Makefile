GO ?= go

.PHONY: build test check race vet fuzz

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The full gate: vet plus the entire suite — chaos tests included — under
# the race detector.
race:
	$(GO) test -race ./...

check: vet race

# Short fuzz pass over the untrusted-input parsers.
fuzz:
	$(GO) test -fuzz FuzzReadDIMACS -fuzztime 15s ./internal/graph
	$(GO) test -fuzz FuzzFromEdges -fuzztime 15s ./internal/graph
