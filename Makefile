GO ?= go

.PHONY: build test short vet lint race benchgate check fuzz sanitize servesmoke

build:
	$(GO) build ./...

# Long tier: the full suite — the differential/metamorphic kernel matrix,
# the observability determinism goldens, and the E4 regression gate included.
test:
	$(GO) test ./...

# Short tier: -short trims the differential matrix to its quick subset and
# skips the benchmark-regression gate. For fast inner-loop iteration.
short:
	$(GO) test -short ./...

vet:
	$(GO) vet ./...

# Static kernel-discipline lint, two passes plus the prediction gate:
#   1. The syntactic kernelcheck analyzers over every package — they flag
#      nondeterminism inside kernels (math/rand, time, go statements, map
#      ranges), Data() host-view aliasing in device code, and
#      loop-variable-capturing kernel closures that escape.
#   2. The CFG/dataflow warp analyzers (divergence, coalesce, atomicserial,
#      barrier) over the kernel packages, gated by the committed
#      lint_baseline.txt: known findings are tolerated, any NEW unsuppressed
#      finding fails the build. After an intentional kernel change,
#      regenerate with
#        go run ./cmd/kernelcheck -warp -baseline lint_baseline.txt \
#          -write-baseline ./internal/gpualgo ./internal/vwarp
#   3. TestWarplintPredictions — every kernel's committed static verdict
#      (testdata/warplint_expectations.json) must match what the analyzers
#      say today AND correlate with the simulator's measured counters.
#      Regenerate with -update-warplint after an intentional change.
# Shipped as a standalone driver rather than a `go vet -vettool` plugin
# because the build environment is offline (no golang.org/x/tools); the
# analyzers mirror the go/analysis shape, so a vettool port is mechanical.
# Suppress a deliberate finding with `//kernelcheck:ignore <rule>`.
lint:
	$(GO) run ./cmd/kernelcheck ./...
	$(GO) run ./cmd/kernelcheck -warp -baseline lint_baseline.txt ./internal/gpualgo ./internal/vwarp
	$(GO) test ./internal/gpualgo -run TestWarplintPredictions -count=1

# Dynamic kernel sanitizer sweep: every kernel on a small skewed workload
# under racecheck/memcheck/synccheck; exits non-zero on any error-severity
# hazard.
sanitize:
	$(GO) run ./cmd/maxwarp sanitize -scale 8

# The full gate: vet plus the entire suite — chaos tests and the
# differential suite included — under the race detector.
race:
	$(GO) test -race ./...

# Benchmark-regression gate, two halves:
#   - E4 BFS warp-width sweep cycles must stay within ±10% of the committed
#     baseline (internal/bench/testdata/e4_baseline.json). Regenerate after an
#     intentional performance-model change with
#       go test ./internal/bench -run TestE4CyclesRegression -update-e4-baseline
#   - Hot-path allocs/op must stay within 25% of BENCH_PR10.json (allocations
#     are near-deterministic where wall-clock on shared runners is not); the
#     probes cover sequential, ParallelSMs>1, and end-to-end BFS paths.
#     BENCH_PR7.json remains committed as the PR 7 historical record.
#     Regenerate after an intentional change with
#       go test ./internal/bench -run TestHotPathAllocGate -update-bench-pr10
benchgate:
	$(GO) test ./internal/bench -run 'TestE4CyclesRegression|TestHotPathAllocGate' -count=1

# End-to-end service smoke: start `maxwarp serve` with injected device
# faults, drive a saturating loadtest with tight deadlines, assert the
# robustness contract (no 5xx, load shed, oracle degradation), and require
# a clean SIGTERM drain. See scripts/serve_smoke.sh and docs/SERVICE.md.
servesmoke:
	bash scripts/serve_smoke.sh

check: vet lint race benchgate servesmoke

# Short fuzz pass over the untrusted-input parsers and the observability
# exporters' round-trip properties.
fuzz:
	$(GO) test -fuzz FuzzReadDIMACS -fuzztime 15s ./internal/graph
	$(GO) test -fuzz FuzzFromEdges -fuzztime 15s ./internal/graph
	$(GO) test -fuzz FuzzDeltaApply -fuzztime 15s ./internal/graph
	$(GO) test -fuzz FuzzPromTextRoundTrip -fuzztime 15s ./internal/report
	$(GO) test -fuzz FuzzChromeTraceRoundTrip -fuzztime 15s ./internal/traceview
