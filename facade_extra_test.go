package maxwarp_test

import (
	"testing"

	"maxwarp"
)

// TestFacadeAnalyticsKernels drives every analytics wrapper end-to-end the
// way a downstream user would, with oracle cross-checks.
func TestFacadeAnalyticsKernels(t *testing.T) {
	raw, err := maxwarp.RMAT(8, 6, maxwarp.DefaultRMATParams, 3)
	if err != nil {
		t.Fatal(err)
	}
	g, err := raw.Symmetrize()
	if err != nil {
		t.Fatal(err)
	}
	cfg := maxwarp.DefaultDeviceConfig()
	cfg.NumSMs = 4
	dev, err := maxwarp.NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dg, err := maxwarp.UploadGraph(dev, g)
	if err != nil {
		t.Fatal(err)
	}
	opts := maxwarp.Options{K: 16}

	tri, err := maxwarp.TriangleCount(dev, g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, want := maxwarp.TriangleCountCPU(g); tri.Total != want {
		t.Fatalf("triangles %d, oracle %d", tri.Total, want)
	}

	core, err := maxwarp.KCore(dev, dg, 3, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, want := maxwarp.KCoreCPU(g, 3); core.Remaining != want {
		t.Fatalf("3-core %d, oracle %d", core.Remaining, want)
	}

	mis, err := maxwarp.MIS(dev, dg, 5, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, want := maxwarp.MISCPU(g, 5); mis.Size != want {
		t.Fatalf("MIS %d, oracle %d", mis.Size, want)
	}

	col, err := maxwarp.GraphColoring(dev, dg, 5, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := maxwarp.ValidColoring(g, col.Colors); err != nil {
		t.Fatal(err)
	}
	if _, greedy := maxwarp.GreedyColoringCPU(g); col.NumColors > 3*greedy {
		t.Fatalf("palette %d vs greedy %d", col.NumColors, greedy)
	}

	srcs := []maxwarp.VertexID{0, 7}
	bc, err := maxwarp.BetweennessCentrality(dev, g, srcs, opts)
	if err != nil {
		t.Fatal(err)
	}
	oracle := maxwarp.BetweennessCentralityCPU(g, srcs)
	for v := range oracle {
		diff := float64(bc.Scores[v]) - oracle[v]
		if diff < 0 {
			diff = -diff
		}
		if diff > 1e-2*oracle[v]+1e-2 {
			t.Fatalf("bc[%d] = %g, oracle %g", v, bc.Scores[v], oracle[v])
		}
	}
}

// TestFacadeTraversalVariants covers the remaining traversal and SpMV
// wrappers.
func TestFacadeTraversalVariants(t *testing.T) {
	g, err := maxwarp.RMAT(8, 8, maxwarp.DefaultRMATParams, 9)
	if err != nil {
		t.Fatal(err)
	}
	cfg := maxwarp.DefaultDeviceConfig()
	cfg.NumSMs = 4
	dev, err := maxwarp.NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dg, err := maxwarp.UploadGraph(dev, g)
	if err != nil {
		t.Fatal(err)
	}
	want := maxwarp.BFSCPU(g, 0)

	front, err := maxwarp.BFSFrontier(dev, dg, 0, maxwarp.Options{K: 8})
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if front.Levels[v] != want[v] {
			t.Fatalf("frontier BFS differs at %d", v)
		}
	}

	hyb, err := maxwarp.BFSDirectionOpt(dev, g, 0, maxwarp.DirOptions{Options: maxwarp.Options{K: 8}})
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if hyb.Levels[v] != want[v] {
			t.Fatalf("hybrid BFS differs at %d", v)
		}
	}
	forced := maxwarp.DirPull
	pull, err := maxwarp.BFSDirectionOpt(dev, g, 0, maxwarp.DirOptions{
		Options: maxwarp.Options{K: 8}, Force: &forced,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pull.Schedule) == 0 || pull.Schedule[0] != maxwarp.DirPull {
		t.Fatal("forced pull schedule wrong")
	}

	vals := make([]float32, g.NumEdges())
	x := make([]float32, g.NumVertices())
	for i := range vals {
		vals[i] = 0.5
	}
	for i := range x {
		x[i] = 1
	}
	spmv, err := maxwarp.SpMV(dev, dg, vals, x, maxwarp.Options{K: 16})
	if err != nil {
		t.Fatal(err)
	}
	oracle := maxwarp.SpMVCPU(g, vals, x)
	for v := range oracle {
		diff := spmv.Y[v] - oracle[v]
		if diff < 0 {
			diff = -diff
		}
		if diff > 1e-3 {
			t.Fatalf("spmv y[%d] = %g, oracle %g", v, spmv.Y[v], oracle[v])
		}
	}

	sorted, perm, err := maxwarp.SortByDegree(g)
	if err != nil {
		t.Fatal(err)
	}
	if sorted.NumEdges() != g.NumEdges() || len(perm) != g.NumVertices() {
		t.Fatal("SortByDegree shape wrong")
	}
}

// TestFacadeTuningAndUtilities covers the tuner, Chung-Lu, WCC extraction,
// and trace wrappers.
func TestFacadeTuningAndUtilities(t *testing.T) {
	cfg := maxwarp.DefaultDeviceConfig()
	cfg.NumSMs = 4

	g, err := maxwarp.ChungLu(512, 8, 2.1, 5)
	if err != nil {
		t.Fatal(err)
	}
	sub, newID, err := maxwarp.ExtractLargestWCC(g)
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumVertices() == 0 || sub.NumVertices() > g.NumVertices() {
		t.Fatalf("WCC size %d", sub.NumVertices())
	}
	if len(newID) != g.NumVertices() {
		t.Fatal("id map wrong length")
	}

	tune, err := maxwarp.AutoTuneNeighborSum(cfg, sub, maxwarp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tune.BestK < 1 || len(tune.Cycles) == 0 {
		t.Fatalf("tune result %+v", tune)
	}
	tune2, err := maxwarp.AutoTuneBFS(cfg, sub, 0, maxwarp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tune2.BestK < 1 {
		t.Fatalf("bfs tune %+v", tune2)
	}

	dev, err := maxwarp.NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr := &maxwarp.RingTracer{Cap: 1 << 12}
	dev.SetTracer(tr)
	dg, err := maxwarp.UploadGraph(dev, sub)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := maxwarp.BFS(dev, dg, 0, maxwarp.Options{K: 8}); err != nil {
		t.Fatal(err)
	}
	if tr.Total() == 0 {
		t.Fatal("tracer saw nothing")
	}
}

// TestFacadeSCCAndCloseness covers the remaining analytics wrappers.
func TestFacadeSCCAndCloseness(t *testing.T) {
	g, err := maxwarp.RMAT(8, 6, maxwarp.DefaultRMATParams, 12)
	if err != nil {
		t.Fatal(err)
	}
	cfg := maxwarp.DefaultDeviceConfig()
	cfg.NumSMs = 4
	dev, err := maxwarp.NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	scc, err := maxwarp.SCC(dev, g, maxwarp.Options{K: 16})
	if err != nil {
		t.Fatal(err)
	}
	oracle := maxwarp.SCCCPU(g)
	for v := range oracle {
		if scc.Labels[v] != oracle[v] {
			t.Fatalf("SCC label %d differs", v)
		}
	}
	cl, err := maxwarp.ClosenessCentrality(dev, g, 8, 3, maxwarp.Options{K: 16})
	if err != nil {
		t.Fatal(err)
	}
	want := maxwarp.ClosenessCentralityCPU(g, cl.Sources)
	for v := range want {
		if cl.Scores[v] != want[v] {
			t.Fatalf("closeness %d differs", v)
		}
	}

	srcs := []maxwarp.VertexID{0, 5}
	msdg, err := maxwarp.UploadGraph(dev, g)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := maxwarp.MSBFS(dev, msdg, srcs, maxwarp.Options{K: 8})
	if err != nil {
		t.Fatal(err)
	}
	wantLv := maxwarp.MSBFSCPU(g, srcs)
	for s := range srcs {
		for v := range wantLv[s] {
			if ms.Levels[s][v] != wantLv[s][v] {
				t.Fatalf("msbfs source %d vertex %d differs", s, v)
			}
		}
	}

	wdg, err := maxwarp.UploadWeightedGraph(dev, g, maxwarp.EdgeWeights(g, 8, 2))
	if err != nil {
		t.Fatal(err)
	}
	ds, err := maxwarp.DeltaStepping(dev, wdg, 0, maxwarp.DeltaSteppingOptions{Options: maxwarp.Options{K: 8}})
	if err != nil {
		t.Fatal(err)
	}
	oracleD := maxwarp.SSSPCPU(g, maxwarp.EdgeWeights(g, 8, 2), 0)
	for v := range oracleD {
		if ds.Dist[v] != oracleD[v] {
			t.Fatalf("delta-stepping dist %d differs", v)
		}
	}
}

// TestFacadeSanitizer runs BFS under the sanitizer through the public API:
// the paper's benign same-value level race must surface as informational
// only, with zero error-severity findings and unchanged simulated cycles.
func TestFacadeSanitizer(t *testing.T) {
	g, err := maxwarp.RMAT(8, 6, maxwarp.DefaultRMATParams, 3)
	if err != nil {
		t.Fatal(err)
	}
	run := func(sanitized bool) (*maxwarp.BFSResult, *maxwarp.KernelSanitizer) {
		cfg := maxwarp.DefaultDeviceConfig()
		cfg.NumSMs = 4
		cfg.Sanitize = sanitized
		dev, err := maxwarp.NewDevice(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var san *maxwarp.KernelSanitizer
		if sanitized {
			san = maxwarp.NewKernelSanitizer()
			dev.SetSanitizer(san)
		}
		dg, err := maxwarp.UploadGraph(dev, g)
		if err != nil {
			t.Fatal(err)
		}
		res, err := maxwarp.BFS(dev, dg, 0, maxwarp.Options{K: 8})
		if err != nil {
			t.Fatal(err)
		}
		return res, san
	}
	plain, _ := run(false)
	checked, san := run(true)
	if plain.Stats.Cycles != checked.Stats.Cycles {
		t.Errorf("sanitizer changed simulated cycles: %d vs %d", plain.Stats.Cycles, checked.Stats.Cycles)
	}
	if errs := san.Errors(); len(errs) != 0 {
		t.Errorf("BFS raised %d error-severity findings:\n%s", len(errs), san.Text())
	}
	for _, d := range san.Diagnostics() {
		if d.Severity != maxwarp.SeverityInfo {
			t.Errorf("unexpected severity %v for %s", d.Severity, d.String())
		}
	}
}
