package maxwarp_test

import (
	"fmt"

	"maxwarp"
)

// Example demonstrates the library's headline result: the same BFS runs as
// the thread-per-vertex baseline (K=1) and as the paper's virtual
// warp-centric mapping (K=32), and the skewed graph makes the difference.
func Example() {
	g, _ := maxwarp.RMAT(10, 16, maxwarp.DefaultRMATParams, 42)
	dev, _ := maxwarp.NewDevice(maxwarp.DefaultDeviceConfig())
	dg, _ := maxwarp.UploadGraph(dev, g)

	base, _ := maxwarp.BFS(dev, dg, 0, maxwarp.Options{K: 1})
	warp, _ := maxwarp.BFS(dev, dg, 0, maxwarp.Options{K: 32})

	fmt.Println("same answer:", base.Depth == warp.Depth)
	fmt.Println("warp-centric wins by >5x:", base.Stats.Cycles > 5*warp.Stats.Cycles)
	// Output:
	// same answer: true
	// warp-centric wins by >5x: true
}

// ExampleAutoTuneBFS picks the best virtual warp width for a graph
// empirically — the tuning loop the paper's K knob implies.
func ExampleAutoTuneBFS() {
	g, _ := maxwarp.Mesh2D(32, 32) // regular degree-4 road-network regime
	cfg := maxwarp.DefaultDeviceConfig()
	res, _ := maxwarp.AutoTuneBFS(cfg, g, 0, maxwarp.Options{})
	fmt.Println("narrow virtual warps win on a mesh:", res.BestK <= 8)
	// Output:
	// narrow virtual warps win on a mesh: true
}

// ExampleSSSP runs weighted shortest paths and cross-checks the device
// result against the CPU Dijkstra oracle.
func ExampleSSSP() {
	g, _ := maxwarp.RMAT(9, 8, maxwarp.DefaultRMATParams, 7)
	weights := maxwarp.EdgeWeights(g, 10, 1)
	dev, _ := maxwarp.NewDevice(maxwarp.DefaultDeviceConfig())
	dg, _ := maxwarp.UploadWeightedGraph(dev, g, weights)

	res, _ := maxwarp.SSSP(dev, dg, 0, maxwarp.Options{K: 16})
	oracle := maxwarp.SSSPCPU(g, weights, 0)
	match := true
	for v := range oracle {
		if res.Dist[v] != oracle[v] {
			match = false
		}
	}
	fmt.Println("matches Dijkstra:", match)
	// Output:
	// matches Dijkstra: true
}

// ExampleTriangleCount counts triangles with one virtual warp per vertex.
func ExampleTriangleCount() {
	raw, _ := maxwarp.RMAT(9, 6, maxwarp.DefaultRMATParams, 3)
	g, _ := raw.Symmetrize()
	dev, _ := maxwarp.NewDevice(maxwarp.DefaultDeviceConfig())

	res, _ := maxwarp.TriangleCount(dev, g, maxwarp.Options{K: 32})
	_, oracle := maxwarp.TriangleCountCPU(g)
	fmt.Println("matches CPU oracle:", res.Total == oracle)
	// Output:
	// matches CPU oracle: true
}
