// Command kernelcheck runs the repo's kernel-discipline analyzers (package
// internal/kernelcheck) over Go source trees. It is the stand-in for a
// `go vet -vettool` driver: the real go/analysis plumbing lives in
// golang.org/x/tools, which this repo deliberately does not depend on, so a
// small standalone driver walks, parses, and checks files itself.
//
// Usage:
//
//	kernelcheck [./... | dir | file.go]...
//
// With no arguments it checks ./... . Findings print as
// file:line:col: message [rule] and the exit status is 1 when any survive
// //kernelcheck:ignore suppression.
package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"maxwarp/internal/kernelcheck"
)

func main() {
	args := os.Args[1:]
	if len(args) == 0 {
		args = []string{"./..."}
	}
	files, err := collectFiles(args)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kernelcheck: %v\n", err)
		os.Exit(2)
	}
	findings := 0
	for _, path := range files {
		src, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kernelcheck: %v\n", err)
			os.Exit(2)
		}
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, path, src, parser.ParseComments)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kernelcheck: %v\n", err)
			os.Exit(2)
		}
		for _, d := range kernelcheck.CheckFile(fset, file) {
			fmt.Println(d)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "kernelcheck: %d finding(s)\n", findings)
		os.Exit(1)
	}
}

// collectFiles expands the argument list into a sorted, de-duplicated set of
// .go files. "dir/..." walks recursively; a plain directory takes only its
// own files; a .go path is taken as-is. Hidden directories, testdata, and
// vendor are skipped.
func collectFiles(args []string) ([]string, error) {
	seen := make(map[string]bool)
	var out []string
	add := func(path string) {
		if !seen[path] {
			seen[path] = true
			out = append(out, path)
		}
	}
	for _, arg := range args {
		switch {
		case strings.HasSuffix(arg, "/..."):
			root := strings.TrimSuffix(arg, "/...")
			if root == "" {
				root = "."
			}
			err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if d.IsDir() {
					name := d.Name()
					if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
						name == "testdata" || name == "vendor" || name == "bin") {
						return filepath.SkipDir
					}
					return nil
				}
				if strings.HasSuffix(path, ".go") {
					add(path)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
		case strings.HasSuffix(arg, ".go"):
			add(arg)
		default:
			entries, err := os.ReadDir(arg)
			if err != nil {
				return nil, err
			}
			for _, e := range entries {
				if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
					add(filepath.Join(arg, e.Name()))
				}
			}
		}
	}
	sort.Strings(out)
	return out, nil
}
