// Command kernelcheck runs the repo's kernel-discipline analyzers (package
// internal/kernelcheck) over Go source trees. It is the stand-in for a
// `go vet -vettool` driver: the real go/analysis plumbing lives in
// golang.org/x/tools, which this repo deliberately does not depend on, so a
// small standalone driver walks, parses, and checks files itself.
//
// Usage:
//
//	kernelcheck [-warp] [-baseline FILE [-write-baseline]] [./... | dir | file.go]...
//
// With no arguments it checks ./... . Findings print as
// file:line:col: message [rule] and the exit status is 1 when any survive
// //kernelcheck:ignore suppression.
//
// -warp adds the advisory warp-efficiency analyzers (divergence, coalesce,
// atomicserial — see internal/kernelcheck/warp.go). Because every
// interesting graph kernel legitimately diverges somewhere, those findings
// are gated on a committed baseline rather than failing outright: with
// -baseline FILE, a warp finding only fails the run when its
// (file, rule) count exceeds the recorded count — i.e. a NEW unsuppressed
// finding. -write-baseline regenerates FILE from the current findings
// (review the diff like any other committed artifact). Discipline findings
// (nondeterm, barrier, bufalias, loopcapture) always fail.
package main

import (
	"flag"
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"maxwarp/internal/kernelcheck"
)

func main() {
	warp := flag.Bool("warp", false, "also run the advisory warp-efficiency analyzers (divergence, coalesce, atomicserial)")
	baselinePath := flag.String("baseline", "", "warp-findings baseline file: only counts above the baseline fail the run")
	writeBaseline := flag.Bool("write-baseline", false, "regenerate -baseline from the current warp findings instead of gating on it")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		args = []string{"./..."}
	}
	if *writeBaseline && *baselinePath == "" {
		fmt.Fprintln(os.Stderr, "kernelcheck: -write-baseline requires -baseline")
		os.Exit(2)
	}
	files, err := collectFiles(args)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kernelcheck: %v\n", err)
		os.Exit(2)
	}
	hard := 0
	warpCounts := make(map[string]int) // "file\trule" -> count
	var warpDiags []kernelcheck.Diagnostic
	for _, path := range files {
		src, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kernelcheck: %v\n", err)
			os.Exit(2)
		}
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, path, src, parser.ParseComments)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kernelcheck: %v\n", err)
			os.Exit(2)
		}
		for _, d := range kernelcheck.CheckFile(fset, file) {
			fmt.Println(d)
			hard++
		}
		if *warp {
			for _, d := range kernelcheck.CheckFileWith(fset, file, kernelcheck.WarpAll) {
				warpDiags = append(warpDiags, d)
				warpCounts[normPath(path)+"\t"+d.Rule]++
			}
		}
	}
	if hard > 0 {
		fmt.Fprintf(os.Stderr, "kernelcheck: %d finding(s)\n", hard)
		os.Exit(1)
	}
	if !*warp {
		return
	}
	if *writeBaseline {
		if err := saveBaseline(*baselinePath, warpCounts); err != nil {
			fmt.Fprintf(os.Stderr, "kernelcheck: %v\n", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "kernelcheck: wrote %d baseline entries (%d findings) to %s\n",
			len(warpCounts), len(warpDiags), *baselinePath)
		return
	}
	if *baselinePath == "" {
		// No baseline: advisory findings print and fail like hard ones.
		for _, d := range warpDiags {
			fmt.Println(d)
		}
		if len(warpDiags) > 0 {
			fmt.Fprintf(os.Stderr, "kernelcheck: %d warp finding(s)\n", len(warpDiags))
			os.Exit(1)
		}
		return
	}
	base, err := loadBaseline(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kernelcheck: %v\n", err)
		os.Exit(2)
	}
	viol := 0
	for _, k := range sortedKeys(warpCounts) {
		if warpCounts[k] > base[k] {
			parts := strings.SplitN(k, "\t", 2)
			fmt.Fprintf(os.Stderr, "kernelcheck: new %s finding(s) in %s: %d, baseline %d\n",
				parts[1], parts[0], warpCounts[k], base[k])
			viol++
		}
	}
	if viol > 0 {
		for _, d := range warpDiags {
			fmt.Println(d)
		}
		fmt.Fprintf(os.Stderr, "kernelcheck: %d (file, rule) group(s) above baseline %s — fix, suppress with //kernelcheck:ignore <rule>, or regenerate with -write-baseline\n",
			viol, *baselinePath)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "kernelcheck: %d warp finding(s), all within baseline %s\n", len(warpDiags), *baselinePath)
}

// normPath canonicalizes a file path for baseline keys: forward slashes,
// no leading "./", so keys are stable across invocation styles.
func normPath(p string) string {
	return strings.TrimPrefix(filepath.ToSlash(p), "./")
}

// loadBaseline reads a "file<TAB>rule<TAB>count" baseline. Keying on
// (file, rule) counts rather than positions keeps the baseline stable
// under unrelated edits that shift line numbers.
func loadBaseline(path string) (map[string]int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	out := make(map[string]int)
	for ln, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, "\t")
		if len(parts) != 3 {
			return nil, fmt.Errorf("%s:%d: want file<TAB>rule<TAB>count, got %q", path, ln+1, line)
		}
		n := 0
		if _, err := fmt.Sscanf(parts[2], "%d", &n); err != nil {
			return nil, fmt.Errorf("%s:%d: bad count %q", path, ln+1, parts[2])
		}
		out[parts[0]+"\t"+parts[1]] = n
	}
	return out, nil
}

func saveBaseline(path string, counts map[string]int) error {
	var b strings.Builder
	b.WriteString("# kernelcheck warp-findings baseline: file<TAB>rule<TAB>count\n")
	b.WriteString("# Regenerate with: go run ./cmd/kernelcheck -warp -baseline <this file> -write-baseline <dirs>\n")
	for _, k := range sortedKeys(counts) {
		fmt.Fprintf(&b, "%s\t%d\n", k, counts[k])
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// collectFiles expands the argument list into a sorted, de-duplicated set of
// .go files. "dir/..." walks recursively; a plain directory takes only its
// own files; a .go path is taken as-is. Hidden directories, testdata, and
// vendor are skipped.
func collectFiles(args []string) ([]string, error) {
	seen := make(map[string]bool)
	var out []string
	add := func(path string) {
		if !seen[path] {
			seen[path] = true
			out = append(out, path)
		}
	}
	for _, arg := range args {
		switch {
		case strings.HasSuffix(arg, "/..."):
			root := strings.TrimSuffix(arg, "/...")
			if root == "" {
				root = "."
			}
			err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if d.IsDir() {
					name := d.Name()
					if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
						name == "testdata" || name == "vendor" || name == "bin") {
						return filepath.SkipDir
					}
					return nil
				}
				if strings.HasSuffix(path, ".go") {
					add(path)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
		case strings.HasSuffix(arg, ".go"):
			add(arg)
		default:
			entries, err := os.ReadDir(arg)
			if err != nil {
				return nil, err
			}
			for _, e := range entries {
				if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
					add(filepath.Join(arg, e.Name()))
				}
			}
		}
	}
	sort.Strings(out)
	return out, nil
}
