package main

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"maxwarp/internal/graph"
)

// withArgs runs main's run() with fresh flags and the given CLI args.
func withArgs(t *testing.T, args ...string) error {
	t.Helper()
	oldArgs := os.Args
	oldCmd := flag.CommandLine
	defer func() {
		os.Args = oldArgs
		flag.CommandLine = oldCmd
	}()
	flag.CommandLine = flag.NewFlagSet("graphgen", flag.ContinueOnError)
	os.Args = append([]string{"graphgen"}, args...)
	return run()
}

func TestGenerateAllKinds(t *testing.T) {
	dir := t.TempDir()
	cases := map[string][]string{
		"rmat":       {"-kind", "rmat", "-scale", "8", "-ef", "4"},
		"uniform":    {"-kind", "uniform", "-n", "200", "-m", "800"},
		"mesh":       {"-kind", "mesh", "-rows", "10", "-cols", "12"},
		"torus":      {"-kind", "torus", "-rows", "8", "-cols", "8"},
		"smallworld": {"-kind", "smallworld", "-n", "200", "-ringk", "2"},
		"starburst":  {"-kind", "starburst", "-n", "300", "-hubs", "2", "-hubdeg", "50"},
		"preset":     {"-kind", "preset", "-preset", "Patents-like", "-scale", "8"},
	}
	for name, args := range cases {
		out := filepath.Join(dir, name+".bin")
		if err := withArgs(t, append(args, "-out", out)...); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		f, err := os.Open(out)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		g, err := graph.ReadBinary(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: unreadable output: %v", name, err)
		}
		if g.NumVertices() == 0 {
			t.Fatalf("%s: empty graph", name)
		}
	}
}

func TestGenerateEdgeListFormat(t *testing.T) {
	out := filepath.Join(t.TempDir(), "g.edges")
	if err := withArgs(t, "-kind", "uniform", "-n", "50", "-m", "100", "-format", "edges", "-out", out); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	g, err := graph.ReadEdgeList(f)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 50 || g.NumEdges() != 100 {
		t.Fatalf("round trip wrong: V=%d E=%d", g.NumVertices(), g.NumEdges())
	}
}

func TestGenerateDIMACSFormat(t *testing.T) {
	out := filepath.Join(t.TempDir(), "g.gr")
	if err := withArgs(t, "-kind", "uniform", "-n", "40", "-m", "120", "-format", "dimacs", "-out", out); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	g, w, err := graph.ReadDIMACS(f)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 40 || len(w) != 120 {
		t.Fatalf("V=%d weights=%d", g.NumVertices(), len(w))
	}
}

func TestGenerateErrors(t *testing.T) {
	cases := [][]string{
		{"-kind", "rmat"},                                  // missing -out
		{"-kind", "nope", "-out", "x.bin"},                 // bad kind
		{"-kind", "rmat", "-format", "x", "-out", "x.bin"}, // bad format... but file created first
		{"-kind", "preset", "-preset", "nope", "-out", "x.bin"},
		{"-kind", "mesh", "-rows", "0", "-out", "x.bin"},
	}
	dir := t.TempDir()
	for _, args := range cases {
		// Redirect any -out into the temp dir.
		for i, a := range args {
			if a == "x.bin" {
				args[i] = filepath.Join(dir, "x.bin")
			}
		}
		if err := withArgs(t, args...); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
