// Command graphgen generates workload graphs and writes them in this
// repository's binary CSR format or as a plain edge list.
//
// Usage:
//
//	graphgen -kind rmat       -scale 16 -ef 16 -seed 42 -out g.bin
//	graphgen -kind uniform    -n 65536 -m 1048576 -out g.edges -format edges
//	graphgen -kind mesh       -rows 256 -cols 256 -out mesh.bin
//	graphgen -kind smallworld -n 65536 -ringk 3 -beta 0.1 -out sw.bin
//	graphgen -kind starburst  -n 65536 -hubs 8 -hubdeg 20000 -avgdeg 2 -out sb.bin
//	graphgen -kind preset     -preset LiveJournal-like -scale 14 -out lj.bin
package main

import (
	"flag"
	"fmt"
	"os"

	"maxwarp/internal/gengraph"
	"maxwarp/internal/graph"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
}

func run() error {
	kind := flag.String("kind", "rmat", "rmat | uniform | mesh | torus | smallworld | starburst | preset")
	out := flag.String("out", "", "output file (required)")
	format := flag.String("format", "bin", "bin | edges | dimacs (adds weights 1..maxw)")
	seed := flag.Uint64("seed", 42, "generator seed")
	maxw := flag.Int("maxw", 100, "max edge weight for -format dimacs")
	scale := flag.Int("scale", 14, "log2 vertices (rmat, preset)")
	ef := flag.Int("ef", 16, "edge factor (rmat)")
	a := flag.Float64("a", gengraph.DefaultRMAT.A, "RMAT a")
	b := flag.Float64("b", gengraph.DefaultRMAT.B, "RMAT b")
	c := flag.Float64("c", gengraph.DefaultRMAT.C, "RMAT c")
	d := flag.Float64("d", gengraph.DefaultRMAT.D, "RMAT d")
	n := flag.Int("n", 1<<14, "vertices (uniform, smallworld, starburst)")
	m := flag.Int("m", 1<<18, "edges (uniform)")
	rows := flag.Int("rows", 128, "mesh/torus rows")
	cols := flag.Int("cols", 128, "mesh/torus cols")
	ringk := flag.Int("ringk", 3, "small-world ring half-degree")
	beta := flag.Float64("beta", 0.1, "small-world rewiring probability")
	hubs := flag.Int("hubs", 8, "starburst hub count")
	hubdeg := flag.Int("hubdeg", 10000, "starburst hub degree")
	avgdeg := flag.Int("avgdeg", 2, "starburst background degree")
	preset := flag.String("preset", "LiveJournal-like", "preset name (kind=preset)")
	flag.Parse()

	if *out == "" {
		return fmt.Errorf("-out is required")
	}

	var g *graph.CSR
	var err error
	switch *kind {
	case "rmat":
		g, err = gengraph.RMAT(*scale, *ef, gengraph.RMATParams{A: *a, B: *b, C: *c, D: *d}, *seed)
	case "uniform":
		g, err = gengraph.UniformRandom(*n, *m, *seed)
	case "mesh":
		g, err = gengraph.Mesh2D(*rows, *cols)
	case "torus":
		g, err = gengraph.Torus2D(*rows, *cols)
	case "smallworld":
		g, err = gengraph.WattsStrogatz(*n, *ringk, *beta, *seed)
	case "starburst":
		g, err = gengraph.StarBurst(*n, *hubs, *hubdeg, *avgdeg, *seed)
	case "preset":
		var p gengraph.Preset
		p, err = gengraph.PresetByName(*preset)
		if err == nil {
			g, err = p.Build(*scale, *seed)
		}
	default:
		return fmt.Errorf("unknown kind %q", *kind)
	}
	if err != nil {
		return err
	}

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	switch *format {
	case "bin":
		err = graph.WriteBinary(f, g)
	case "edges":
		err = graph.WriteEdgeList(f, g)
	case "dimacs":
		err = graph.WriteDIMACS(f, g, gengraph.EdgeWeights(g, int32(*maxw), *seed))
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s: %s\n", *out, graph.Stats(g))
	return nil
}
