package main

import (
	"flag"
	"fmt"
	"sort"

	"maxwarp/internal/cpualgo"
	"maxwarp/internal/gengraph"
	"maxwarp/internal/gpualgo"
	"maxwarp/internal/graph"
	"maxwarp/internal/simt"
	"maxwarp/internal/xrand"
)

// cmdGraph500 runs a (scaled-down) Graph500-style BFS benchmark: RMAT graph
// at the given scale with edge factor 16, a batch of random search keys with
// non-zero degree, per-search validation against the BFS invariants, and
// harmonic-mean TEPS over the batch — the standard reporting protocol,
// against simulated cycles.
func cmdGraph500(args []string) error {
	fs := flag.NewFlagSet("graph500", flag.ContinueOnError)
	scale := fs.Int("scale", 11, "log2 vertices")
	ef := fs.Int("ef", 16, "edge factor")
	nbfs := fs.Int("nbfs", 16, "number of BFS roots (Graph500 uses 64)")
	k := fs.Int("k", 32, "virtual warp width")
	seed := fs.Uint64("seed", 42, "generator seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := gengraph.RMAT(*scale, *ef, gengraph.DefaultRMAT, *seed)
	if err != nil {
		return err
	}
	fmt.Printf("graph500-style run: %s, %d roots, K=%d\n\n", graph.Stats(g), *nbfs, *k)

	// Search keys: uniform random vertices with degree >= 1, deduplicated,
	// per the Graph500 sampling rule.
	r := xrand.New(*seed + 1)
	keys := make([]graph.VertexID, 0, *nbfs)
	seen := map[graph.VertexID]bool{}
	for attempts := 0; len(keys) < *nbfs && attempts < 100*(*nbfs); attempts++ {
		v := graph.VertexID(r.Intn(g.NumVertices()))
		if g.Degree(v) == 0 || seen[v] {
			continue
		}
		seen[v] = true
		keys = append(keys, v)
	}
	if len(keys) < *nbfs {
		return fmt.Errorf("could not sample %d distinct non-isolated roots", *nbfs)
	}

	cfg := simt.DefaultConfig()
	teps := make([]float64, 0, len(keys))
	var totalCycles int64
	for i, root := range keys {
		d, err := simt.NewDevice(cfg)
		if err != nil {
			return err
		}
		dg := gpualgo.Upload(d, g)
		res, err := gpualgo.BFS(d, dg, root, gpualgo.Options{K: *k})
		if err != nil {
			return fmt.Errorf("root %d: %w", root, err)
		}
		if !cpualgo.ValidBFSLevels(g, root, res.Levels) {
			return fmt.Errorf("root %d: VALIDATION FAILED", root)
		}
		// Graph500 counts edges in the traversed component.
		var traversed int64
		for v, l := range res.Levels {
			if l >= 0 {
				traversed += int64(g.Degree(graph.VertexID(v)))
			}
		}
		secs := float64(res.Stats.Cycles) / (cfg.ClockGHz * 1e9)
		t := float64(traversed) / secs
		teps = append(teps, t)
		totalCycles += res.Stats.Cycles
		fmt.Printf("  bfs %2d  root %6d  depth %2d  traversed %8d edges  %8.2f MTEPS  valid ✓\n",
			i, root, res.Depth, traversed, t/1e6)
	}

	sort.Float64s(teps)
	harmonic := 0.0
	for _, t := range teps {
		harmonic += 1 / t
	}
	harmonic = float64(len(teps)) / harmonic
	fmt.Printf("\nharmonic-mean %8.2f MTEPS   median %8.2f MTEPS   (simulated, %.2f Mcycles total)\n",
		harmonic/1e6, teps[len(teps)/2]/1e6, float64(totalCycles)/1e6)
	fmt.Println("all searches validated against BFS invariants ✓")
	return nil
}
