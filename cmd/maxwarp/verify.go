package main

import (
	"flag"
	"fmt"
	"math"
	"reflect"

	"maxwarp/internal/cpualgo"
	"maxwarp/internal/gengraph"
	"maxwarp/internal/gpualgo"
	"maxwarp/internal/graph"
	"maxwarp/internal/simt"
)

// cmdVerify cross-checks every device kernel against its CPU oracle on a
// chosen workload — the user-facing self-test.
func cmdVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ContinueOnError)
	preset := fs.String("preset", "LiveJournal-like", "workload preset name")
	scale := fs.Int("scale", 9, "log2 vertices")
	seed := fs.Uint64("seed", 42, "generator seed")
	k := fs.Int("k", 32, "virtual warp width to verify")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, err := gengraph.PresetByName(*preset)
	if err != nil {
		return err
	}
	g, err := p.Build(*scale, *seed)
	if err != nil {
		return err
	}
	sym, err := g.Symmetrize()
	if err != nil {
		return err
	}
	src := graph.LargestOutComponentSeed(g)
	weights := gengraph.EdgeWeights(g, 12, *seed)
	opts := gpualgo.Options{K: *k}
	newDev := func() (*simt.Device, error) { return simt.NewDevice(simt.DefaultConfig()) }

	fmt.Printf("verifying all kernels on %s (scale %d, K=%d) against CPU oracles\n\n", p.Name, *scale, *k)
	failures := 0
	check := func(name string, run func() error) {
		if err := run(); err != nil {
			failures++
			fmt.Printf("  FAIL %-14s %v\n", name, err)
			return
		}
		fmt.Printf("  ok   %s\n", name)
	}

	check("bfs", func() error {
		d, err := newDev()
		if err != nil {
			return err
		}
		res, err := gpualgo.BFS(d, gpualgo.Upload(d, g), src, opts)
		if err != nil {
			return err
		}
		if !reflect.DeepEqual(res.Levels, cpualgo.BFSSequential(g, src)) {
			return fmt.Errorf("levels differ from CPU BFS")
		}
		return nil
	})
	check("bfsfrontier", func() error {
		d, err := newDev()
		if err != nil {
			return err
		}
		res, err := gpualgo.BFSFrontier(d, gpualgo.Upload(d, g), src, opts)
		if err != nil {
			return err
		}
		if !reflect.DeepEqual(res.Levels, cpualgo.BFSSequential(g, src)) {
			return fmt.Errorf("levels differ from CPU BFS")
		}
		return nil
	})
	check("bfsdirection", func() error {
		d, err := newDev()
		if err != nil {
			return err
		}
		res, err := gpualgo.BFSDirectionOpt(d, g, src, gpualgo.DirOptions{Options: opts})
		if err != nil {
			return err
		}
		if !reflect.DeepEqual(res.Levels, cpualgo.BFSSequential(g, src)) {
			return fmt.Errorf("levels differ from CPU BFS")
		}
		return nil
	})
	check("sssp", func() error {
		d, err := newDev()
		if err != nil {
			return err
		}
		dg, err := gpualgo.UploadWeighted(d, g, weights)
		if err != nil {
			return err
		}
		res, err := gpualgo.SSSP(d, dg, src, opts)
		if err != nil {
			return err
		}
		if !reflect.DeepEqual(res.Dist, cpualgo.SSSPDijkstra(g, weights, src)) {
			return fmt.Errorf("distances differ from Dijkstra")
		}
		return nil
	})
	check("deltastep", func() error {
		d, err := newDev()
		if err != nil {
			return err
		}
		dg, err := gpualgo.UploadWeighted(d, g, weights)
		if err != nil {
			return err
		}
		res, err := gpualgo.DeltaStepping(d, dg, src, gpualgo.DeltaSteppingOptions{Options: opts})
		if err != nil {
			return err
		}
		if !reflect.DeepEqual(res.Dist, cpualgo.SSSPDijkstra(g, weights, src)) {
			return fmt.Errorf("distances differ from Dijkstra")
		}
		return nil
	})
	check("pagerank", func() error {
		d, err := newDev()
		if err != nil {
			return err
		}
		const iters = 10
		res, err := gpualgo.PageRank(d, g, gpualgo.PageRankOptions{Options: opts, Iterations: iters})
		if err != nil {
			return err
		}
		want, _ := cpualgo.PageRank(g, cpualgo.PageRankOptions{MaxIters: iters, Tolerance: 1e-30})
		for v := range want {
			if math.Abs(float64(res.Ranks[v])-want[v]) > 1e-3*(want[v]+1e-9)+1e-5 {
				return fmt.Errorf("rank[%d] = %g, oracle %g", v, res.Ranks[v], want[v])
			}
		}
		return nil
	})
	check("cc", func() error {
		d, err := newDev()
		if err != nil {
			return err
		}
		res, err := gpualgo.ConnectedComponents(d, gpualgo.Upload(d, sym), opts)
		if err != nil {
			return err
		}
		if !reflect.DeepEqual(res.Labels, cpualgo.ConnectedComponents(sym)) {
			return fmt.Errorf("labels differ from union-find")
		}
		return nil
	})
	check("triangles", func() error {
		d, err := newDev()
		if err != nil {
			return err
		}
		res, err := gpualgo.TriangleCount(d, sym, opts)
		if err != nil {
			return err
		}
		if _, want := gpualgo.TriangleCountCPU(sym); res.Total != want {
			return fmt.Errorf("count %d, oracle %d", res.Total, want)
		}
		return nil
	})
	check("kcore", func() error {
		d, err := newDev()
		if err != nil {
			return err
		}
		res, err := gpualgo.KCore(d, gpualgo.Upload(d, sym), 3, opts)
		if err != nil {
			return err
		}
		if _, want := gpualgo.KCoreCPU(sym, 3); res.Remaining != want {
			return fmt.Errorf("|3-core| %d, oracle %d", res.Remaining, want)
		}
		return nil
	})
	check("mis", func() error {
		d, err := newDev()
		if err != nil {
			return err
		}
		res, err := gpualgo.MIS(d, gpualgo.Upload(d, sym), *seed, opts)
		if err != nil {
			return err
		}
		if _, want := gpualgo.MISCPU(sym, *seed); res.Size != want {
			return fmt.Errorf("|MIS| %d, oracle %d", res.Size, want)
		}
		return nil
	})
	check("coloring", func() error {
		d, err := newDev()
		if err != nil {
			return err
		}
		res, err := gpualgo.GraphColoring(d, gpualgo.Upload(d, sym), *seed, opts)
		if err != nil {
			return err
		}
		return gpualgo.ValidColoring(sym, res.Colors)
	})
	check("bc", func() error {
		d, err := newDev()
		if err != nil {
			return err
		}
		srcs := []graph.VertexID{src}
		res, err := gpualgo.BetweennessCentrality(d, g, srcs, opts)
		if err != nil {
			return err
		}
		want := gpualgo.BetweennessCentralityCPU(g, srcs)
		for v := range want {
			if math.Abs(float64(res.Scores[v])-want[v]) > 1e-2*math.Abs(want[v])+1e-2 {
				return fmt.Errorf("bc[%d] = %g, oracle %g", v, res.Scores[v], want[v])
			}
		}
		return nil
	})
	check("scc", func() error {
		d, err := newDev()
		if err != nil {
			return err
		}
		res, err := gpualgo.SCC(d, g, opts)
		if err != nil {
			return err
		}
		if !reflect.DeepEqual(res.Labels, cpualgo.SCC(g)) {
			return fmt.Errorf("labels differ from Tarjan")
		}
		return nil
	})
	check("msbfs", func() error {
		d, err := newDev()
		if err != nil {
			return err
		}
		srcs := []graph.VertexID{src, 0, graph.VertexID(g.NumVertices() / 2)}
		res, err := gpualgo.MSBFS(d, gpualgo.Upload(d, g), srcs, opts)
		if err != nil {
			return err
		}
		want := gpualgo.MSBFSCPU(g, srcs)
		for s := range srcs {
			if !reflect.DeepEqual(res.Levels[s], want[s]) {
				return fmt.Errorf("source %d levels differ", s)
			}
		}
		return nil
	})
	check("spmv", func() error {
		d, err := newDev()
		if err != nil {
			return err
		}
		vals := make([]float32, g.NumEdges())
		x := make([]float32, g.NumVertices())
		for i := range vals {
			vals[i] = float32(i%7) * 0.25
		}
		for i := range x {
			x[i] = float32(i%5) * 0.5
		}
		res, err := gpualgo.SpMV(d, gpualgo.Upload(d, g), vals, x, opts)
		if err != nil {
			return err
		}
		want := gpualgo.SpMVCPU(g, vals, x)
		for v := range want {
			if math.Abs(float64(res.Y[v]-want[v])) > 1e-3*(math.Abs(float64(want[v]))+1) {
				return fmt.Errorf("y[%d] = %g, oracle %g", v, res.Y[v], want[v])
			}
		}
		return nil
	})

	if failures > 0 {
		return fmt.Errorf("%d kernel(s) failed verification", failures)
	}
	fmt.Println("\nall kernels verified ✓")
	return nil
}
