// Command maxwarp runs the repository's experiments and individual graph
// algorithms on the simulated GPU.
//
// Usage:
//
//	maxwarp list
//	maxwarp run  [-exp all|E1,E4,...] [-scale N] [-seed N] [-format text|md|csv] [-out FILE]
//	maxwarp bfs  [-preset NAME | -graph FILE] [-k K] [-dynamic] [-defer N] [-src V] [-scale N]
//	             [-inject SPEC] [-retries N]
//	maxwarp algo -name sssp [-preset NAME | -graph FILE] [-k K] [-scale N]
//	maxwarp info [-preset NAME | -graph FILE] [-scale N]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"maxwarp/internal/bench"
	"maxwarp/internal/gengraph"
	"maxwarp/internal/gpualgo"
	"maxwarp/internal/graph"
	"maxwarp/internal/obs"
	"maxwarp/internal/report"
	"maxwarp/internal/resilient"
	"maxwarp/internal/simt"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "maxwarp:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		usage(os.Stderr)
		return fmt.Errorf("missing subcommand")
	}
	switch args[0] {
	case "list":
		return cmdList(os.Stdout)
	case "run":
		return cmdRun(args[1:])
	case "bfs":
		return cmdBFS(args[1:])
	case "algo":
		return cmdAlgo(args[1:])
	case "sanitize":
		return cmdSanitize(args[1:])
	case "lint":
		return cmdLint(args[1:])
	case "trace":
		return cmdTrace(args[1:])
	case "profile":
		return cmdProfile(args[1:])
	case "verify":
		return cmdVerify(args[1:])
	case "graph500":
		return cmdGraph500(args[1:])
	case "dynamic":
		return cmdDynamic(args[1:])
	case "serve":
		return cmdServe(args[1:])
	case "loadtest":
		return cmdLoadtest(args[1:])
	case "info":
		return cmdInfo(args[1:])
	case "help", "-h", "--help":
		usage(os.Stdout)
		return nil
	default:
		usage(os.Stderr)
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func usage(w io.Writer) {
	fmt.Fprint(w, `maxwarp — virtual warp-centric GPU graph algorithms (PPoPP'11 reproduction)

subcommands:
  list   list experiments and workload presets
  run    run experiments and print their tables
  bfs    run one BFS configuration and print its stats
  algo   run any kernel (sssp, pagerank, cc, spmv, triangles, kcore, mis, ...)
  sanitize run kernels under the race/memcheck/synccheck sanitizer
  lint   static warp-efficiency verdicts per kernel (CFG + lane-taint analysis)
  trace  run a traced BFS and print instruction mix + SM timeline
  profile run one kernel with sampled tracing + metrics (parallel-safe)
  verify cross-check every kernel against its CPU oracle
  graph500 run a Graph500-style BFS benchmark with validation
  dynamic stream mutation batches and compare incremental repair vs full recompute
  serve  run the fault-tolerant graph-analytics HTTP daemon
  loadtest drive a synthetic query mix against a serve daemon
  info   print a workload's degree statistics
`)
}

func cmdList(w io.Writer) error {
	fmt.Fprintln(w, "experiments:")
	for _, e := range bench.All() {
		fmt.Fprintf(w, "  %-4s %s\n", e.ID, e.Title)
	}
	fmt.Fprintln(w, "\nworkload presets:")
	for _, p := range gengraph.Presets() {
		fmt.Fprintf(w, "  %-18s %s\n", p.Name, p.Regime)
	}
	return nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	exp := fs.String("exp", "all", "comma-separated experiment ids, or 'all'")
	scale := fs.Int("scale", 10, "log2 vertices for synthetic workloads")
	seed := fs.Uint64("seed", 42, "generator seed")
	format := fs.String("format", "text", "output format: text, md, csv, chart")
	out := fs.String("out", "", "write output to file instead of stdout")
	parallel := fs.Int("parallel", 0, "host goroutines driving SMs (0 = one per CPU, 1 = sequential event loop)")
	metricsOut := fs.String("metrics", "", "write Prometheus-style metrics totals across all experiment devices to file ('-' = stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := bench.Config{Scale: *scale, Seed: *seed}.WithDefaults()
	cfg.Device.ParallelSMs = *parallel

	// With -metrics, every device the experiments create gets profiling
	// enabled and its lifetime totals are folded into one document at the
	// end. Counter totals are deterministic; Cycles sums every launch.
	var devices []*simt.Device
	if *metricsOut != "" {
		cfg.NewDevice = func(dc simt.Config) (*simt.Device, error) {
			d, err := simt.NewDevice(dc)
			if err == nil {
				d.SetProfiling(true)
				devices = append(devices, d)
			}
			return d, err
		}
	}

	var exps []bench.Experiment
	if *exp == "all" {
		exps = bench.All()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			e, err := bench.ByID(strings.TrimSpace(id))
			if err != nil {
				return err
			}
			exps = append(exps, e)
		}
	}
	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	for _, e := range exps {
		fmt.Fprintf(os.Stderr, "running %s: %s ...\n", e.ID, e.Title)
		tables, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		for _, t := range tables {
			switch *format {
			case "md":
				fmt.Fprintln(w, t.Markdown())
			case "csv":
				fmt.Fprintln(w, t.CSV())
			case "text":
				fmt.Fprintln(w, t.Text())
			case "chart":
				if t.Chartable() {
					fmt.Fprintln(w, t.ToChart().Text())
				} else {
					fmt.Fprintln(w, t.Text())
				}
			default:
				return fmt.Errorf("unknown format %q", *format)
			}
		}
	}
	if *metricsOut != "" {
		var total simt.LaunchStats
		var launches int64
		for _, d := range devices {
			t := d.Totals()
			total.Add(&t)
			launches += d.LaunchCount()
		}
		text, err := obs.ExportPromText("maxwarp", &total, nil, false)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "metrics: totals over %d devices, %d launches\n", len(devices), launches)
		if *metricsOut == "-" {
			fmt.Print(text)
		} else if err := os.WriteFile(*metricsOut, []byte(text), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// loadWorkload resolves the -preset/-graph flags shared by the run-one
// subcommands. Files ending in .gr are parsed as weighted DIMACS and the
// weights flow to the weighted kernels (sssp, deltastep).
func loadWorkload(preset, file string, scale int, seed uint64) (*graph.CSR, string, error) {
	g, name, _, err := loadWorkloadWeighted(preset, file, scale, seed)
	return g, name, err
}

func loadWorkloadWeighted(preset, file string, scale int, seed uint64) (*graph.CSR, string, []int32, error) {
	switch {
	case preset != "" && file != "":
		return nil, "", nil, fmt.Errorf("-preset and -graph are mutually exclusive")
	case preset != "":
		p, err := gengraph.PresetByName(preset)
		if err != nil {
			return nil, "", nil, err
		}
		g, err := p.Build(scale, seed)
		return g, p.Name, nil, err
	case file != "":
		f, err := os.Open(file)
		if err != nil {
			return nil, "", nil, err
		}
		defer f.Close()
		switch {
		case strings.HasSuffix(file, ".bin"):
			g, err := graph.ReadBinary(f)
			return g, file, nil, err
		case strings.HasSuffix(file, ".gr"):
			g, weights, err := graph.ReadDIMACS(f)
			return g, file, weights, err
		default:
			g, err := graph.ReadEdgeList(f)
			return g, file, nil, err
		}
	default:
		p := gengraph.Presets()[1] // LiveJournal-like
		g, err := p.Build(scale, seed)
		return g, p.Name, nil, err
	}
}

func cmdBFS(args []string) error {
	fs := flag.NewFlagSet("bfs", flag.ContinueOnError)
	preset := fs.String("preset", "", "workload preset name (see 'maxwarp list')")
	file := fs.String("graph", "", "graph file (.bin or edge list)")
	scale := fs.Int("scale", 12, "log2 vertices for presets")
	seed := fs.Uint64("seed", 42, "generator seed")
	k := fs.Int("k", 32, "virtual warp width (1 = thread-per-vertex baseline)")
	dynamic := fs.Bool("dynamic", false, "dynamic workload distribution")
	chunk := fs.Int("chunk", 0, "dynamic fetch chunk size (0 = default)")
	deferTh := fs.Int("defer", 0, "outlier deferral degree threshold (0 = off)")
	src := fs.Int("src", -1, "source vertex (-1 = auto: large component)")
	inject := fs.String("inject", "", "fault-injection spec: abort=N,bitflip=N,buffers=a|b,loss=N,seed=N,maxfaults=N")
	retries := fs.Int("retries", 3, "per-level retry budget under -inject (min 1)")
	parallel := fs.Int("parallel", 0, "host goroutines driving SMs (0 = one per CPU, 1 = sequential event loop)")
	sanitized := fs.Bool("sanitize", false, "run under the kernel sanitizer and report hazards after the stats")
	sinks := addObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, name, err := loadWorkload(*preset, *file, *scale, *seed)
	if err != nil {
		return err
	}
	source := graph.VertexID(*src)
	if *src < 0 {
		source = graph.LargestOutComponentSeed(g)
	}
	dcfg := simt.DefaultConfig()
	dcfg.ParallelSMs = *parallel
	dcfg.Sanitize = *sanitized
	dev, err := simt.NewDevice(dcfg)
	if err != nil {
		return err
	}
	san := armSanitizer(dev, *sanitized)
	sinks.arm(dev, 64, 4096)
	opts := gpualgo.Options{
		K: *k, Dynamic: *dynamic, Chunk: int32(*chunk), DeferThreshold: int32(*deferTh),
		Metrics: sinks.metrics,
	}
	if *inject != "" {
		plan, err := parseFaultPlan(*inject)
		if err != nil {
			return err
		}
		if *retries < 1 {
			return fmt.Errorf("-retries must be >= 1 (got %d)", *retries)
		}
		dev.SetFaultPlan(plan)
		rres, err := resilient.BFS(dev, g, source, opts, resilient.Policy{MaxRetries: *retries})
		if err != nil {
			return err
		}
		reached := 0
		for _, l := range rres.Levels {
			if l >= 0 {
				reached++
			}
		}
		fmt.Printf("graph       %s (%s)\n", name, graph.Stats(g))
		fmt.Printf("mapping     K=%d dynamic=%v defer=%d  inject=%s\n", *k, *dynamic, *deferTh, *inject)
		fmt.Printf("source      %d  reached %d/%d  depth %d\n", source, reached, g.NumVertices(), rres.Depth)
		printOutcome(os.Stdout, rres.Outcome)
		if rres.GPU != nil {
			cfg := dev.Config()
			fmt.Printf("cycles      %d  (%.3f ms at %.1f GHz)\n",
				rres.GPU.Stats.Cycles, rres.GPU.Stats.TimeMS(cfg.ClockGHz), cfg.ClockGHz)
		}
		return reportSanitizer(san, false)
	}
	dg := gpualgo.Upload(dev, g)
	res, err := gpualgo.BFS(dev, dg, source, opts)
	if err != nil {
		return err
	}
	reached := 0
	for _, l := range res.Levels {
		if l >= 0 {
			reached++
		}
	}
	cfg := dev.Config()
	fmt.Printf("graph       %s (%s)\n", name, graph.Stats(g))
	fmt.Printf("mapping     K=%d dynamic=%v defer=%d\n", *k, *dynamic, *deferTh)
	fmt.Printf("source      %d  reached %d/%d  depth %d  levels-launches %d\n",
		source, reached, g.NumVertices(), res.Depth, res.Launches)
	fmt.Printf("cycles      %d  (%.3f ms at %.1f GHz)\n",
		res.Stats.Cycles, res.Stats.TimeMS(cfg.ClockGHz), cfg.ClockGHz)
	fmt.Printf("throughput  %.2f MTEPS (simulated)\n", res.TEPS(g.NumEdges(), cfg.ClockGHz)/1e6)
	fmt.Printf("simd util   %.3f   useful %.3f   imbalance CV %.3f\n",
		res.Stats.SIMDUtilization(), res.Stats.UsefulUtilization(), res.Stats.WarpImbalanceCV())
	fmt.Printf("memory      %d txns (%.2f/op)   atomics %d (+%d serial)   deferred %d\n",
		res.Stats.MemTxns, res.Stats.TxnsPerMemOp(), res.Stats.AtomicOps, res.Stats.AtomicSerial, res.Deferred)
	if err := sinks.flush(&res.Stats); err != nil {
		return err
	}
	return reportSanitizer(san, false)
}

func cmdInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ContinueOnError)
	preset := fs.String("preset", "", "workload preset name")
	file := fs.String("graph", "", "graph file (.bin or edge list)")
	scale := fs.Int("scale", 12, "log2 vertices for presets")
	seed := fs.Uint64("seed", 42, "generator seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, name, err := loadWorkload(*preset, *file, *scale, *seed)
	if err != nil {
		return err
	}
	s := graph.Stats(g)
	fmt.Printf("%s: %s\n", name, s)
	zero, buckets := graph.DegreeHistogram(g)
	t := &report.Table{ID: "info", Title: "degree histogram", Columns: []string{"degree", "vertices"}}
	t.AddRow("0", report.I(int64(zero)))
	for b, count := range buckets {
		t.AddRow(fmt.Sprintf("%d-%d", 1<<b, 1<<(b+1)-1), report.I(int64(count)))
	}
	fmt.Print(t.Text())
	return nil
}
