package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"maxwarp/internal/kernelcheck"
	"maxwarp/internal/report"
)

// cmdLint runs the static warp-efficiency analysis (internal/kernelcheck:
// CFG + lane-taint dataflow) over the kernel packages and prints one
// verdict row per kernel: divergence class, loop balance, worst memory
// stride, atomic behavior, and barrier safety — the static predictions that
// TestWarplintPredictions cross-validates against the simulator's measured
// LaunchStats counters.
//
// Exit status: non-zero when any kernel-discipline finding (nondeterm,
// barrier, bufalias, loopcapture) survives suppression. The advisory warp
// findings (divergence/coalesce/atomicserial) are counted in the table but
// do not fail the run — `make lint` gates those against the committed
// baseline via cmd/kernelcheck instead.
func cmdLint(args []string) error {
	fs := flag.NewFlagSet("lint", flag.ContinueOnError)
	dirs := fs.String("dirs", "internal/gpualgo,internal/vwarp", "comma-separated source directories to analyze")
	includeTests := fs.Bool("tests", false, "include _test.go files")
	jsonOut := fs.Bool("json", false, "emit the verdicts as JSON (the CI artifact format)")
	showFindings := fs.Bool("findings", false, "also print every advisory warp finding")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var verdicts []kernelcheck.KernelVerdict
	for _, dir := range strings.Split(*dirs, ",") {
		dir = strings.TrimSpace(dir)
		if dir == "" {
			continue
		}
		vs, err := kernelcheck.DirVerdicts(dir, *includeTests)
		if err != nil {
			return fmt.Errorf("lint %s: %w", dir, err)
		}
		verdicts = append(verdicts, vs...)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(verdicts)
	}

	t := &report.Table{
		ID:      "WARPLINT",
		Title:   fmt.Sprintf("static warp-efficiency verdicts — %s", *dirs),
		Columns: []string{"kernel", "file", "divergence", "loops", "coalesce", "atomics", "barriers", "findings"},
	}
	totalFindings := 0
	for _, v := range verdicts {
		t.AddRow(v.Kernel, fmt.Sprintf("%s:%d", v.File, v.Line),
			v.Divergence, v.Loops, v.Coalesce, v.Atomics, v.Barriers,
			strconv.Itoa(v.Findings))
		totalFindings += v.Findings
	}
	fmt.Print(t.Text())
	fmt.Printf("\n%d kernel(s), %d advisory finding(s). Verdict vocabulary: divergence none|laneid|data, loops uniform|imbalanced, coalesce none|uniform|unit|strided|irregular, atomics none|leader|collide|serial, barriers none|uniform|divergent.\n",
		len(verdicts), totalFindings)

	if *showFindings {
		fmt.Println()
		for _, dir := range strings.Split(*dirs, ",") {
			if err := printDirFindings(strings.TrimSpace(dir), *includeTests); err != nil {
				return err
			}
		}
	}
	return nil
}

// printDirFindings prints the unsuppressed warp-rule findings for one
// directory, file by file.
func printDirFindings(dir string, includeTests bool) error {
	diags, err := kernelcheck.DirWarpFindings(dir, includeTests)
	if err != nil {
		return err
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	return nil
}
