package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"maxwarp/internal/gengraph"
	"maxwarp/internal/gpualgo"
	"maxwarp/internal/graph"
	"maxwarp/internal/obs"
	"maxwarp/internal/simt"
	"maxwarp/internal/traceview"
)

// startHostProfiles arms Go's own runtime profilers over the simulated run:
// -cpuprofile starts CPU sampling immediately, -memprofile writes an
// allocation profile at teardown. These profile the *simulator host*, not the
// simulated GPU — the tool for chasing interpret-loop regressions with
// `go tool pprof`, complementing the simulated-side metrics/trace sinks.
// The returned stop function is safe to call exactly once.
func startHostProfiles(cpuOut, memOut string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuOut != "" {
		cpuFile, err = os.Create(cpuOut)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("start cpu profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "cpu profile -> %s\n", cpuOut)
		}
		if memOut != "" {
			f, err := os.Create(memOut)
			if err != nil {
				return err
			}
			defer f.Close()
			runtime.GC() // flush recently-freed objects so in-use stats are accurate
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("write heap profile: %w", err)
			}
			fmt.Fprintf(os.Stderr, "heap profile -> %s\n", memOut)
		}
		return nil
	}, nil
}

// obsSinks bundles the observability outputs shared by the profile, bfs,
// algo, and run subcommands: a metrics registry destined for a Prometheus
// text file ("-" = stdout) and a sampling tracer destined for a Chrome
// trace_event JSON file.
type obsSinks struct {
	metricsOut string
	traceOut   string
	perSM      bool

	metrics *obs.Metrics
	tracer  *obs.SamplingTracer
}

// addObsFlags registers the shared -metrics/-trace-out flags.
func addObsFlags(fs *flag.FlagSet) *obsSinks {
	s := &obsSinks{}
	fs.StringVar(&s.metricsOut, "metrics", "", "write Prometheus-style metrics to file ('-' = stdout)")
	fs.StringVar(&s.traceOut, "trace-out", "", "write a Chrome trace_event JSON timeline to file")
	fs.BoolVar(&s.perSM, "persm", false, "include per-SM samples in -metrics output")
	return s
}

// arm attaches the requested sinks to a device: a metrics registry (with
// per-launch histograms enabled) and/or a parallel-safe sampling tracer.
// Sampled tracing and metrics never force the sequential fallback.
func (s *obsSinks) arm(dev *simt.Device, sampleEvery int64, capPerSM int) {
	cfg := dev.Config()
	if s.metricsOut != "" {
		s.metrics = obs.NewMetrics(cfg.NumSMs)
		dev.SetProfiling(true)
	}
	if s.traceOut != "" {
		s.tracer = obs.NewSamplingTracer(cfg.NumSMs, sampleEvery, capPerSM)
		dev.SetTracer(s.tracer)
	}
}

// flush writes the collected outputs. stats is the run's merged LaunchStats
// (the Prometheus document contains it plus any registry counters).
func (s *obsSinks) flush(stats *simt.LaunchStats) error {
	if s.metricsOut != "" {
		text, err := obs.ExportPromText("maxwarp", stats, s.metrics, s.perSM)
		if err != nil {
			return err
		}
		if s.metricsOut == "-" {
			fmt.Print(text)
		} else if err := os.WriteFile(s.metricsOut, []byte(text), 0o644); err != nil {
			return err
		}
	}
	if s.traceOut != "" && s.tracer != nil {
		data, err := traceview.ChromeTrace(s.tracer.Events())
		if err != nil {
			return err
		}
		if err := os.WriteFile(s.traceOut, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "trace: sampled %d of %d instructions, kept %d events -> %s\n",
			s.tracer.InstrSampled(), s.tracer.InstrSeen(), s.tracer.Kept(), s.traceOut)
	}
	return nil
}

// cmdProfile runs one kernel with the full observability stack — sharded
// counters, per-launch histograms, and the parallel-safe sampling tracer —
// and emits Prometheus text plus (optionally) a Chrome timeline. Unlike the
// trace subcommand, this keeps the ParallelSMs fast path.
func cmdProfile(args []string) error {
	fs := flag.NewFlagSet("profile", flag.ContinueOnError)
	name := fs.String("name", "bfs", "kernel: bfs | sssp | pagerank")
	preset := fs.String("preset", "", "workload preset name (see 'maxwarp list')")
	file := fs.String("graph", "", "graph file (.bin or edge list)")
	scale := fs.Int("scale", 12, "log2 vertices for presets")
	seed := fs.Uint64("seed", 42, "generator seed")
	k := fs.Int("k", 32, "virtual warp width (1 = thread-per-vertex baseline)")
	dynamic := fs.Bool("dynamic", false, "dynamic workload distribution")
	iters := fs.Int("iters", 10, "iterations for pagerank")
	sample := fs.Int64("sample", 64, "keep 1 in N instruction events per SM")
	events := fs.Int("events", 4096, "trace ring capacity per SM")
	parallel := fs.Int("parallel", 0, "host goroutines driving SMs (0 = one per CPU, 1 = sequential event loop)")
	cpuprofile := fs.String("cpuprofile", "", "write a host CPU profile (pprof) to file")
	memprofile := fs.String("memprofile", "", "write a host heap profile (pprof) to file at exit")
	sinks := addObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if sinks.metricsOut == "" {
		sinks.metricsOut = "-"
	}
	stopProfiles, err := startHostProfiles(*cpuprofile, *memprofile)
	if err != nil {
		return err
	}
	defer func() {
		// Early-error path: flush whatever profile data exists.
		if stopProfiles != nil {
			stopProfiles()
		}
	}()
	g, gname, fileWeights, err := loadWorkloadWeighted(*preset, *file, *scale, *seed)
	if err != nil {
		return err
	}
	dcfg := simt.DefaultConfig()
	dcfg.ParallelSMs = *parallel
	dev, err := simt.NewDevice(dcfg)
	if err != nil {
		return err
	}
	sinks.arm(dev, *sample, *events)
	opts := gpualgo.Options{K: *k, Dynamic: *dynamic, Metrics: sinks.metrics}
	src := graph.LargestOutComponentSeed(g)

	var (
		stats  simt.LaunchStats
		rounds int
	)
	switch *name {
	case "bfs":
		res, err := gpualgo.BFS(dev, gpualgo.Upload(dev, g), src, opts)
		if err != nil {
			return err
		}
		stats, rounds = res.Stats, res.Iterations
	case "sssp":
		weights := fileWeights
		if weights == nil {
			weights = gengraph.EdgeWeights(g, 16, *seed)
		}
		dg, err := gpualgo.UploadWeighted(dev, g, weights)
		if err != nil {
			return err
		}
		res, err := gpualgo.SSSP(dev, dg, src, opts)
		if err != nil {
			return err
		}
		stats, rounds = res.Stats, res.Iterations
	case "pagerank":
		res, err := gpualgo.PageRank(dev, g, gpualgo.PageRankOptions{Options: opts, Iterations: *iters})
		if err != nil {
			return err
		}
		stats, rounds = res.Stats, res.Iterations
	default:
		return fmt.Errorf("profile: unknown kernel %q (want bfs, sssp, or pagerank)", *name)
	}

	// Stop host profiling before sink serialization so the CPU profile
	// covers the simulated run only.
	stop := stopProfiles
	stopProfiles = nil
	if err := stop(); err != nil {
		return err
	}

	cfg := dev.Config()
	fmt.Fprintf(os.Stderr, "profiled %s on %s (K=%d, ParallelSMs=%d): %d cycles over %d rounds",
		*name, gname, *k, stats.ParallelSMs, stats.Cycles, rounds)
	if stats.SequentialFallback != "" {
		fmt.Fprintf(os.Stderr, "  [sequential fallback: %s]", stats.SequentialFallback)
	}
	fmt.Fprintf(os.Stderr, "  (%.3f ms at %.1f GHz)\n", stats.TimeMS(cfg.ClockGHz), cfg.ClockGHz)
	return sinks.flush(&stats)
}
