package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"maxwarp/internal/report"
	"maxwarp/internal/serve"
)

// cmdLoadtest drives a synthetic query mix against a running serve daemon
// and reports latency percentiles, shed rate, and degradation counts.
func cmdLoadtest(args []string) error {
	fs := flag.NewFlagSet("loadtest", flag.ContinueOnError)
	url := fs.String("url", "http://127.0.0.1:8321", "serve base URL")
	mixSpec := fs.String("mix", "bfs@wiki=3,pagerank@wiki=1,cc@road=1,sssp@road=1",
		"weighted query mix: algo@graph[=weight],...")
	duration := fs.Duration("duration", 5*time.Second, "run length")
	qps := fs.Float64("qps", 50, "target offered QPS")
	conc := fs.Int("concurrency", 8, "sender goroutines")
	tenants := fs.Int("tenants", 4, "synthetic tenant count")
	dlMin := fs.Duration("deadline-min", 0, "per-request deadline spread lower bound (0 = server default)")
	dlMax := fs.Duration("deadline-max", 0, "per-request deadline spread upper bound")
	nocache := fs.Float64("nocache", 0.5, "fraction of requests bypassing the result cache")
	seed := fs.Uint64("seed", 1, "workload RNG seed")
	waitReady := fs.Duration("wait-ready", 0, "poll /readyz up to this long before starting")
	jsonOut := fs.String("json", "", "also write the report as JSON to this file ('-' = stdout)")
	assertSmoke := fs.Bool("assert-smoke", false,
		"exit non-zero unless: no 5xx, some load was shed, and some requests degraded to the oracle")
	if err := fs.Parse(args); err != nil {
		return err
	}

	mix, err := serve.ParseMix(*mixSpec)
	if err != nil {
		return err
	}
	if *waitReady > 0 {
		if err := serve.WaitReady(*url, *waitReady); err != nil {
			return err
		}
	}

	rep, err := serve.Load(context.Background(), serve.LoadOptions{
		URL: *url, Mix: mix, Duration: *duration, QPS: *qps,
		Concurrency: *conc, Tenants: *tenants,
		DeadlineMin: *dlMin, DeadlineMax: *dlMax,
		NoCacheFraction: *nocache, Seed: *seed,
	})
	if err != nil {
		return err
	}

	fmt.Printf("loadtest: %s for %.1fs @ %.0f offered QPS\n", *url, rep.DurationSec, rep.OfferedQPS)
	fmt.Printf("  requests   %d (%.1f achieved QPS, %d transport errors)\n", rep.Requests, rep.AchievedQPS, rep.Errors)
	codes := make([]string, 0, len(rep.ByCode))
	for c := range rep.ByCode {
		codes = append(codes, c)
	}
	sort.Strings(codes)
	for _, c := range codes {
		fmt.Printf("  code %-4s  %d\n", c, rep.ByCode[c])
	}
	for reason, n := range rep.ShedBy {
		fmt.Printf("  shed %-12s %d\n", reason, n)
	}
	fmt.Printf("  degraded   %d   cached %d\n", rep.Degraded, rep.Cached)
	fmt.Printf("  latency ms p50=%.2f p95=%.2f p99=%.2f max=%.2f\n",
		rep.P50Millis, rep.P95Millis, rep.P99Millis, rep.MaxMillis)

	if *jsonOut != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if *jsonOut == "-" {
			os.Stdout.Write(data)
		} else if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			return err
		}
	}

	if *assertSmoke {
		return assertSmokeInvariants(*url, rep)
	}
	return nil
}

// assertSmokeInvariants enforces the CI smoke contract: the server under
// injected faults and saturation returns no 5xx (other than drain 503s),
// sheds some load, and degrades some requests to the oracle — all visible
// both in the client-side report and the scraped /metrics.
func assertSmokeInvariants(url string, rep *serve.LoadReport) error {
	if rep.Requests == 0 {
		return fmt.Errorf("loadtest: no requests completed")
	}
	if rep.Server5xx > 0 {
		return fmt.Errorf("loadtest: %d unexpected 5xx responses", rep.Server5xx)
	}
	if rep.ByCode["200"] == 0 {
		return fmt.Errorf("loadtest: nothing succeeded: %v", rep.ByCode)
	}
	fams, err := serve.ScrapeMetrics(url)
	if err != nil {
		return fmt.Errorf("loadtest: scraping /metrics: %w", err)
	}
	shed := familySum(fams, "maxwarp_serve_shed_total")
	degraded := familySum(fams, "maxwarp_serve_degraded_total")
	if shed == 0 {
		return fmt.Errorf("loadtest: smoke run never shed load (shed_total = 0)")
	}
	if degraded == 0 {
		return fmt.Errorf("loadtest: smoke run never degraded to the oracle (degraded_total = 0)")
	}
	fmt.Printf("smoke: OK (shed=%.0f degraded=%.0f, no 5xx)\n", shed, degraded)
	return nil
}

func familySum(fams []report.MetricFamily, name string) float64 {
	f := report.FamilyByName(fams, name)
	if f == nil {
		return 0
	}
	sum := 0.0
	for _, s := range f.Samples {
		sum += s.Value
	}
	return sum
}
