package main

import (
	"flag"
	"fmt"
	"strconv"

	"maxwarp/internal/gengraph"
	"maxwarp/internal/gpualgo"
	"maxwarp/internal/graph"
	"maxwarp/internal/report"
	"maxwarp/internal/sanitize"
	"maxwarp/internal/simt"
)

// armSanitizer attaches a fresh dynamic sanitizer to dev when on is set and
// returns it (nil otherwise). The device config must also have Sanitize set
// for launches to feed it.
func armSanitizer(dev *simt.Device, on bool) *sanitize.Sanitizer {
	if !on {
		return nil
	}
	san := sanitize.NewSanitizer()
	dev.SetSanitizer(san)
	return san
}

// reportSanitizer prints the sanitizer's findings after a run and returns an
// error when any error-severity hazard was detected, so -sanitize runs exit
// non-zero exactly like a failed memcheck would. infoOnlyQuiet suppresses
// the table when every finding is informational (benign races, stale reads).
func reportSanitizer(san *sanitize.Sanitizer, infoOnlyQuiet bool) error {
	if san == nil {
		return nil
	}
	diags := san.Diagnostics()
	if len(diags) == 0 {
		fmt.Println("sanitizer  clean — no hazards detected")
		return nil
	}
	nerr := len(san.Errors())
	if nerr == 0 && infoOnlyQuiet {
		fmt.Printf("sanitizer  clean — %d informational finding(s) (benign races / stale reads)\n", len(diags))
		return nil
	}
	fmt.Println()
	fmt.Print(san.Table().Text())
	if nerr > 0 {
		return fmt.Errorf("sanitizer: %d error-severity finding(s)", nerr)
	}
	return nil
}

// cmdSanitize runs one kernel (or the whole suite) under the dynamic
// sanitizer — the simulator's cuda-memcheck/racecheck/synccheck analogue —
// and reports every hazard. Exit status is non-zero iff any error-severity
// finding survives, so it slots into CI next to `kernelcheck`.
func cmdSanitize(args []string) error {
	fs := flag.NewFlagSet("sanitize", flag.ContinueOnError)
	name := fs.String("name", "all", "kernel to check (see 'algo -name'), or 'all' for the full suite")
	preset := fs.String("preset", "", "workload preset name (see 'maxwarp list')")
	file := fs.String("graph", "", "graph file (.bin or edge list)")
	scale := fs.Int("scale", 10, "log2 vertices for presets")
	seed := fs.Uint64("seed", 42, "generator seed")
	k := fs.Int("k", 4, "virtual warp width (1 = thread-per-vertex baseline)")
	dynamic := fs.Bool("dynamic", false, "dynamic workload distribution")
	coreK := fs.Int("corek", 2, "k for the kcore kernel")
	iters := fs.Int("iters", 5, "iterations for pagerank")
	samples := fs.Int("samples", 2, "landmark samples for closeness")
	info := fs.Bool("info", false, "list informational findings (benign races, stale reads), not just errors")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, gname, fileWeights, err := loadWorkloadWeighted(*preset, *file, *scale, *seed)
	if err != nil {
		return err
	}
	edgeWeights := func() []int32 {
		if fileWeights != nil {
			return fileWeights
		}
		return gengraph.EdgeWeights(g, 16, *seed)
	}
	names := algoNames
	if *name != "all" {
		names = []string{*name}
	}
	opts := gpualgo.Options{K: *k, Dynamic: *dynamic}
	params := algoParams{seed: *seed, coreK: *coreK, iters: *iters, samples: *samples, edgeWeights: edgeWeights}
	src := graph.LargestOutComponentSeed(g)

	summary := &report.Table{
		ID:      "SANITIZE",
		Title:   fmt.Sprintf("kernel sanitizer sweep — %s (%s), K=%d", gname, graph.Stats(g), *k),
		Columns: []string{"kernel", "rounds", "errors", "info", "verdict"},
	}
	totalErrs := 0
	for _, nm := range names {
		// Fresh device and sanitizer per kernel: sanitizer state is keyed by
		// buffer identity and persists across launches, so isolation keeps
		// each kernel's report self-contained.
		dcfg := simt.DefaultConfig()
		dcfg.Sanitize = true
		dev, err := simt.NewDevice(dcfg)
		if err != nil {
			return err
		}
		san := armSanitizer(dev, true)
		run, err := runAlgoOnce(dev, g, nm, src, opts, params)
		if err != nil {
			return fmt.Errorf("sanitize %s: %w", nm, err)
		}
		errs := san.Errors()
		ninfo := len(san.Diagnostics()) - len(errs)
		verdict := "ok"
		if len(errs) > 0 {
			verdict = "FAIL"
			totalErrs += len(errs)
		}
		summary.AddRow(nm, strconv.Itoa(run.rounds), strconv.Itoa(len(errs)), strconv.Itoa(ninfo), verdict)
		if len(errs) > 0 || (*info && ninfo > 0) {
			fmt.Printf("── %s ──\n", nm)
			fmt.Print(san.Table().Text())
			fmt.Println()
		}
	}
	fmt.Print(summary.Text())
	if totalErrs > 0 {
		return fmt.Errorf("sanitizer: %d error-severity finding(s) across %d kernel(s)", totalErrs, len(names))
	}
	return nil
}
