package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"strings"

	"maxwarp/internal/cpualgo"
	"maxwarp/internal/gengraph"
	"maxwarp/internal/gpualgo"
	"maxwarp/internal/graph"
	"maxwarp/internal/report"
	"maxwarp/internal/simt"
)

// cmdDynamic streams random mutation batches over a graph and compares
// incremental repair against full recomputation on the compacted graph,
// verifying every repaired result against the CPU oracle. The cycle totals
// count device launches only; the host-side invalidation phase stands in for
// the tiny host bookkeeping CUDA codes do between launches.
func cmdDynamic(args []string) error {
	fs := flag.NewFlagSet("dynamic", flag.ContinueOnError)
	preset := fs.String("preset", "", "workload preset name (see 'maxwarp list')")
	file := fs.String("graph", "", "graph file (.bin, .gr, or edge list)")
	scale := fs.Int("scale", 10, "log2 vertices for presets")
	seed := fs.Uint64("seed", 42, "generator seed (also seeds the mutation stream)")
	k := fs.Int("k", 32, "virtual warp width")
	batches := fs.Int("batches", 8, "mutation batches to stream")
	size := fs.Int("size", 8, "mutations per batch")
	delFrac := fs.Float64("delfrac", 0.5, "fraction of each batch that deletes live edges (rest inserts)")
	algos := fs.String("algo", "bfs,sssp,cc,pagerank", "comma-separated algorithms to stream")
	parallel := fs.Int("parallel", 0, "host goroutines driving SMs (0 = one per CPU, 1 = sequential event loop)")
	format := fs.String("format", "text", "output format: text, md, csv")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, name, weights, err := loadWorkloadWeighted(*preset, *file, *scale, *seed)
	if err != nil {
		return err
	}
	if weights == nil {
		weights = gengraph.EdgeWeights(g, 10, *seed^0x5bf03635)
	}
	dcfg := simt.DefaultConfig()
	dcfg.ParallelSMs = *parallel
	dev, err := simt.NewDevice(dcfg)
	if err != nil {
		return err
	}
	opts := gpualgo.Options{K: *k}

	fmt.Printf("graph    %s (%s)\n", name, graph.Stats(g))
	fmt.Printf("stream   %d batches x %d mutations, K=%d, seed %d\n\n", *batches, *size, *k, *seed)

	t := &report.Table{
		ID:    "dynamic",
		Title: fmt.Sprintf("incremental repair vs full recompute (%d batches x %d mutations)", *batches, *size),
		Columns: []string{"algo", "inc kcycles/batch", "full kcycles/batch", "speedup",
			"invalidated", "seeds", "rounds", "verified"},
	}
	for _, algo := range strings.Split(*algos, ",") {
		algo = strings.TrimSpace(algo)
		var rep *dynReport
		switch algo {
		case "bfs":
			rep, err = dynBFS(dev, g, opts, *seed, *batches, *size, *delFrac)
		case "sssp":
			rep, err = dynSSSP(dev, g, weights, opts, *seed, *batches, *size, *delFrac)
		case "cc":
			rep, err = dynCC(dev, g, opts, *seed, *batches, *size, *delFrac)
		case "pagerank":
			rep, err = dynPageRank(dev, g, opts, *seed, *batches, *size, *delFrac)
		default:
			return fmt.Errorf("unknown algo %q (want bfs|sssp|cc|pagerank)", algo)
		}
		if err != nil {
			return fmt.Errorf("%s: %w", algo, err)
		}
		b := float64(*batches)
		t.AddRow(algo,
			report.F(float64(rep.incCycles)/b/1e3, 1),
			report.F(float64(rep.fullCycles)/b/1e3, 1),
			report.F(float64(rep.fullCycles)/float64(rep.incCycles), 2),
			report.F(float64(rep.invalidated)/b, 1),
			report.F(float64(rep.seeds)/b, 1),
			report.F(float64(rep.rounds)/b, 1),
			"yes")
	}
	switch *format {
	case "md":
		fmt.Println(t.Markdown())
	case "csv":
		fmt.Println(t.CSV())
	default:
		fmt.Print(t.Text())
	}
	return nil
}

// dynReport accumulates one algorithm's stream totals. Every batch was
// oracle-verified before it is counted, so a returned report implies the
// repaired results matched a from-scratch computation on the compacted graph.
type dynReport struct {
	incCycles, fullCycles      int64
	invalidated, seeds, rounds int
}

func (r *dynReport) add(inc, full int64, info gpualgo.RepairInfo) {
	r.incCycles += inc
	r.fullCycles += full
	r.invalidated += info.Invalidated
	r.seeds += info.Seeds
	r.rounds += info.Rounds
}

// randomBatch builds one mutation batch: a delFrac share of deletions
// sampled from the live edge set, the rest random insertions (duplicates
// and self-loops become counted no-ops). Symmetric batches emit both
// directions of every edge.
func randomBatch(rng *rand.Rand, dl *graph.Delta, size int, delFrac float64, symmetric, weighted bool) []graph.EdgeMutation {
	n := int32(dl.NumVertices())
	type edge struct{ u, v graph.VertexID }
	var live []edge
	for u := int32(0); u < n; u++ {
		dl.OutNeighborsLive(u, func(v graph.VertexID, _ int32) bool {
			if !symmetric || u < v {
				live = append(live, edge{u, v})
			}
			return true
		})
	}
	var batch []graph.EdgeMutation
	add := func(m graph.EdgeMutation) {
		batch = append(batch, m)
		if symmetric {
			m.Src, m.Dst = m.Dst, m.Src
			batch = append(batch, m)
		}
	}
	deletes := int(delFrac * float64(size))
	for i := 0; i < size; i++ {
		if i < deletes && len(live) > 0 {
			e := live[rng.Intn(len(live))]
			add(graph.EdgeMutation{Src: e.u, Dst: e.v, Del: true})
			continue
		}
		var w int32 = 1
		if weighted {
			w = 1 + rng.Int31n(9)
		}
		add(graph.EdgeMutation{Src: rng.Int31n(n), Dst: rng.Int31n(n), Weight: w})
	}
	return batch
}

func verifyI32(algo string, got, want []int32) error {
	for i := range want {
		if got[i] != want[i] {
			return fmt.Errorf("%s: vertex %d: incremental %d, oracle %d", algo, i, got[i], want[i])
		}
	}
	return nil
}

func dynBFS(dev *simt.Device, g *graph.CSR, opts gpualgo.Options, seed uint64, batches, size int, delFrac float64) (*dynReport, error) {
	dl, err := graph.NewDelta(g, nil)
	if err != nil {
		return nil, err
	}
	src := graph.LargestOutComponentSeed(g)
	full, err := gpualgo.BFSFrontier(dev, gpualgo.Upload(dev, g), src, opts)
	if err != nil {
		return nil, err
	}
	prev := full.Levels
	rng := rand.New(rand.NewSource(int64(seed)))
	rep := &dynReport{}
	for b := 0; b < batches; b++ {
		applied, _, err := dl.Apply(randomBatch(rng, dl, size, delFrac, false, false))
		if err != nil {
			return nil, err
		}
		res, info, err := gpualgo.IncrementalBFS(dev, dl, nil, src, prev, applied, opts)
		if err != nil {
			return nil, err
		}
		cg, _, err := dl.Compact()
		if err != nil {
			return nil, err
		}
		fres, err := gpualgo.BFSFrontier(dev, gpualgo.Upload(dev, cg), src, opts)
		if err != nil {
			return nil, err
		}
		if err := verifyI32("bfs", res.Levels, cpualgo.BFSSequential(cg, src)); err != nil {
			return nil, err
		}
		rep.add(res.Stats.Cycles, fres.Stats.Cycles, info)
		prev = res.Levels
	}
	return rep, nil
}

func dynSSSP(dev *simt.Device, g *graph.CSR, weights []int32, opts gpualgo.Options, seed uint64, batches, size int, delFrac float64) (*dynReport, error) {
	dl, err := graph.NewDelta(g, weights)
	if err != nil {
		return nil, err
	}
	src := graph.LargestOutComponentSeed(g)
	dg, err := gpualgo.UploadWeighted(dev, g, weights)
	if err != nil {
		return nil, err
	}
	full, err := gpualgo.SSSP(dev, dg, src, opts)
	if err != nil {
		return nil, err
	}
	prev := full.Dist
	rng := rand.New(rand.NewSource(int64(seed) + 1))
	rep := &dynReport{}
	for b := 0; b < batches; b++ {
		applied, _, err := dl.Apply(randomBatch(rng, dl, size, delFrac, false, true))
		if err != nil {
			return nil, err
		}
		res, info, err := gpualgo.IncrementalSSSP(dev, dl, nil, src, prev, applied, opts)
		if err != nil {
			return nil, err
		}
		cg, cw, err := dl.Compact()
		if err != nil {
			return nil, err
		}
		fdg, err := gpualgo.UploadWeighted(dev, cg, cw)
		if err != nil {
			return nil, err
		}
		fres, err := gpualgo.SSSP(dev, fdg, src, opts)
		if err != nil {
			return nil, err
		}
		if err := verifyI32("sssp", res.Dist, cpualgo.SSSPDijkstra(cg, cw, src)); err != nil {
			return nil, err
		}
		rep.add(res.Stats.Cycles, fres.Stats.Cycles, info)
		prev = res.Dist
	}
	return rep, nil
}

func dynCC(dev *simt.Device, g *graph.CSR, opts gpualgo.Options, seed uint64, batches, size int, delFrac float64) (*dynReport, error) {
	sym, err := g.Symmetrize()
	if err != nil {
		return nil, err
	}
	dl, err := graph.NewDelta(sym, nil)
	if err != nil {
		return nil, err
	}
	full, err := gpualgo.ConnectedComponents(dev, gpualgo.Upload(dev, sym), opts)
	if err != nil {
		return nil, err
	}
	prev := full.Labels
	rng := rand.New(rand.NewSource(int64(seed) + 2))
	rep := &dynReport{}
	for b := 0; b < batches; b++ {
		applied, _, err := dl.Apply(randomBatch(rng, dl, size, delFrac, true, false))
		if err != nil {
			return nil, err
		}
		res, info, err := gpualgo.IncrementalCC(dev, dl, nil, prev, applied, opts)
		if err != nil {
			return nil, err
		}
		cg, _, err := dl.Compact()
		if err != nil {
			return nil, err
		}
		fres, err := gpualgo.ConnectedComponents(dev, gpualgo.Upload(dev, cg), opts)
		if err != nil {
			return nil, err
		}
		if err := verifyI32("cc", res.Labels, cpualgo.ConnectedComponents(cg)); err != nil {
			return nil, err
		}
		rep.add(res.Stats.Cycles, fres.Stats.Cycles, info)
		prev = res.Labels
	}
	return rep, nil
}

func dynPageRank(dev *simt.Device, g *graph.CSR, opts gpualgo.Options, seed uint64, batches, size int, delFrac float64) (*dynReport, error) {
	dl, err := graph.NewDelta(g, nil)
	if err != nil {
		return nil, err
	}
	propts := gpualgo.PageRankOptions{Options: opts, Iterations: 100, Tolerance: 1e-6}
	// Cold start over the unmutated overlay establishes the warm-start state.
	full, _, err := gpualgo.DeltaPageRank(dev, dl, nil, nil, propts)
	if err != nil {
		return nil, err
	}
	prev := full.Ranks
	rng := rand.New(rand.NewSource(int64(seed) + 3))
	rep := &dynReport{}
	for b := 0; b < batches; b++ {
		applied, _, err := dl.Apply(randomBatch(rng, dl, size, delFrac, false, false))
		if err != nil {
			return nil, err
		}
		_ = applied
		res, info, err := gpualgo.DeltaPageRank(dev, dl, nil, prev, propts)
		if err != nil {
			return nil, err
		}
		cg, _, err := dl.Compact()
		if err != nil {
			return nil, err
		}
		// Full recompute baseline: the same kernel and stopping rule, cold
		// started on the compacted graph — the only difference is the warm
		// start, so the cycle ratio isolates the incremental win.
		fdl, err := graph.NewDelta(cg, nil)
		if err != nil {
			return nil, err
		}
		fres, _, err := gpualgo.DeltaPageRank(dev, fdl, nil, nil, propts)
		if err != nil {
			return nil, err
		}
		oracle, _ := cpualgo.PageRank(cg, cpualgo.PageRankOptions{MaxIters: 500, Tolerance: 1e-10})
		for v := range oracle {
			if d := math.Abs(float64(res.Ranks[v]) - oracle[v]); d > 1e-3*(oracle[v]+1e-9)+1e-4 {
				return nil, fmt.Errorf("pagerank: vertex %d: incremental %g, oracle %g", v, res.Ranks[v], oracle[v])
			}
		}
		rep.add(res.Stats.Cycles, fres.Stats.Cycles, info)
		prev = res.Ranks
	}
	return rep, nil
}
