package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"maxwarp/internal/gengraph"
	"maxwarp/internal/graph"
)

func TestRunRejectsBadInput(t *testing.T) {
	cases := [][]string{
		nil,
		{"frobnicate"},
		{"run", "-exp", "E99"},
		{"run", "-format", "yaml", "-exp", "E1"},
		{"bfs", "-preset", "nope"},
		{"bfs", "-preset", "RoadNet-like", "-graph", "x.bin"},
		{"algo", "-name", "nope", "-scale", "6"},
		{"info", "-graph", "/does/not/exist"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestHelpAndList(t *testing.T) {
	if err := run([]string{"help"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleExperiment(t *testing.T) {
	out := filepath.Join(t.TempDir(), "e1.md")
	if err := run([]string{"run", "-exp", "E1", "-scale", "7", "-format", "md", "-out", out}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "E1") {
		t.Fatalf("output missing table: %s", data)
	}
	// csv and text formats to stdout.
	if err := run([]string{"run", "-exp", "E1", "-scale", "7", "-format", "csv"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"run", "-exp", "E1,E2", "-scale", "7"}); err != nil {
		t.Fatal(err)
	}
}

func TestBFSSubcommandOnPresetAndFile(t *testing.T) {
	if err := run([]string{"bfs", "-preset", "RoadNet-like", "-scale", "8", "-k", "4"}); err != nil {
		t.Fatal(err)
	}
	// Via a graph file (binary).
	g, err := gengraph.UniformRandom(128, 512, 1)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.bin")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.WriteBinary(f, g); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := run([]string{"bfs", "-graph", path, "-k", "8", "-src", "0", "-dynamic"}); err != nil {
		t.Fatal(err)
	}
	// Edge-list file path too.
	epath := filepath.Join(t.TempDir(), "g.edges")
	ef, err := os.Create(epath)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.WriteEdgeList(ef, g); err != nil {
		t.Fatal(err)
	}
	ef.Close()
	if err := run([]string{"info", "-graph", epath}); err != nil {
		t.Fatal(err)
	}
}

func TestAlgoSubcommandAllKernels(t *testing.T) {
	for _, name := range []string{"bfs", "bfsfrontier", "sssp", "deltastep", "pagerank", "cc", "scc", "nbrsum", "spmv", "triangles", "kcore", "mis", "coloring", "bc"} {
		args := []string{"algo", "-name", name, "-preset", "Patents-like", "-scale", "7", "-k", "8", "-iters", "2"}
		if err := run(args); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestTraceSubcommand(t *testing.T) {
	if err := run([]string{"trace", "-preset", "Patents-like", "-scale", "7", "-k", "8", "-buckets", "20"}); err != nil {
		t.Fatal(err)
	}
}

func TestVerifySubcommand(t *testing.T) {
	if err := run([]string{"verify", "-preset", "Patents-like", "-scale", "7", "-k", "8"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"verify", "-preset", "nope"}); err == nil {
		t.Fatal("bad preset accepted")
	}
}

func TestGraph500Subcommand(t *testing.T) {
	if err := run([]string{"graph500", "-scale", "8", "-nbfs", "3", "-k", "16"}); err != nil {
		t.Fatal(err)
	}
}

func TestInfoDefaultWorkload(t *testing.T) {
	if err := run([]string{"info", "-scale", "7"}); err != nil {
		t.Fatal(err)
	}
}

func TestAlgoSSSPFromDIMACSFile(t *testing.T) {
	g, err := gengraph.UniformRandom(100, 600, 3)
	if err != nil {
		t.Fatal(err)
	}
	weights := gengraph.EdgeWeights(g, 9, 4)
	path := filepath.Join(t.TempDir(), "g.gr")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.WriteDIMACS(f, g, weights); err != nil {
		t.Fatal(err)
	}
	f.Close()
	for _, name := range []string{"sssp", "deltastep"} {
		if err := run([]string{"algo", "-name", name, "-graph", path, "-k", "8"}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}
