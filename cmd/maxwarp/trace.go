package main

import (
	"flag"
	"fmt"

	"maxwarp/internal/gpualgo"
	"maxwarp/internal/graph"
	"maxwarp/internal/simt"
	"maxwarp/internal/traceview"
)

// cmdTrace runs one BFS configuration with tracing enabled and prints the
// instruction mix, per-SM activity, and a density timeline.
func cmdTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ContinueOnError)
	preset := fs.String("preset", "", "workload preset name (see 'maxwarp list')")
	file := fs.String("graph", "", "graph file (.bin or edge list)")
	scale := fs.Int("scale", 10, "log2 vertices for presets")
	seed := fs.Uint64("seed", 42, "generator seed")
	k := fs.Int("k", 32, "virtual warp width")
	buckets := fs.Int("buckets", 64, "timeline buckets")
	events := fs.Int("events", 1<<20, "trace ring capacity")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, name, err := loadWorkload(*preset, *file, *scale, *seed)
	if err != nil {
		return err
	}
	dev, err := simt.NewDevice(simt.DefaultConfig())
	if err != nil {
		return err
	}
	tr := &simt.RingTracer{Cap: *events}
	dev.SetTracer(tr)
	dg := gpualgo.Upload(dev, g)
	src := graph.LargestOutComponentSeed(g)
	res, err := gpualgo.BFS(dev, dg, src, gpualgo.Options{K: *k})
	if err != nil {
		return err
	}
	fmt.Printf("traced BFS on %s (K=%d): %d cycles over %d launches\n\n",
		name, *k, res.Stats.Cycles, res.Launches)
	if tr.Total() > int64(*events) {
		fmt.Printf("note: ring kept the last %d of %d events\n\n", *events, tr.Total())
	}
	evs := tr.Events()
	for _, t := range traceview.Summarize(evs).Tables() {
		fmt.Println(t.Text())
	}
	fmt.Println(traceview.Timeline(evs, *buckets))
	return nil
}
