package main

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"maxwarp/internal/cpualgo"
	"maxwarp/internal/gpualgo"
	"maxwarp/internal/graph"
	"maxwarp/internal/resilient"
	"maxwarp/internal/simt"
)

// parseFaultPlan parses the -inject flag: a comma-separated list of
// key=value settings describing a seeded fault-injection schedule.
//
//	seed=N       RNG seed for fault scheduling (default 1)
//	abort=N      abort every Nth launch (transient)
//	bitflip=N    flip one bit in a device buffer every Nth launch (transient)
//	buffers=a|b  restrict bit-flip targets to the named buffers
//	loss=N       lose the device after N cumulative cycles (permanent)
//	maxfaults=N  cap the number of injected transient faults
//
// Example: -inject abort=3,bitflip=5,buffers=bfs.levels,seed=7
func parseFaultPlan(spec string) (*simt.FaultPlan, error) {
	plan := &simt.FaultPlan{Seed: 1}
	any := false
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("-inject: %q is not key=value", part)
		}
		switch key {
		case "buffers":
			plan.Buffers = strings.Split(val, "|")
			for _, b := range plan.Buffers {
				if b == "" {
					return nil, fmt.Errorf("-inject: empty buffer name in %q", part)
				}
			}
			continue
		}
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("-inject: bad value in %q", part)
		}
		switch key {
		case "seed":
			plan.Seed = uint64(n)
		case "abort":
			plan.AbortEvery = int(n)
			any = true
		case "bitflip":
			plan.BitFlipEvery = int(n)
			any = true
		case "loss":
			plan.DeviceLossAfterCycles = n
			any = true
		case "maxfaults":
			plan.MaxFaults = int(n)
		default:
			return nil, fmt.Errorf("-inject: unknown key %q (want seed, abort, bitflip, buffers, loss, maxfaults)", key)
		}
	}
	if !any {
		return nil, fmt.Errorf("-inject: %q schedules no faults (set abort=, bitflip=, or loss=)", spec)
	}
	return plan, nil
}

// printOutcome reports how a resilient run fared.
func printOutcome(w io.Writer, out resilient.Outcome) {
	engine := "gpu"
	if out.Degraded {
		engine = "cpu oracle (degraded)"
	}
	fmt.Fprintf(w, "engine   %s   retries %d   faults %d\n", engine, out.Retries, len(out.Faults))
	for _, f := range out.Faults {
		fmt.Fprintf(w, "  fault  iter %d attempt %d: %v\n", f.Iteration, f.Attempt, f.Err)
	}
	if out.FallbackCause != nil {
		fmt.Fprintf(w, "  cause  %v\n", out.FallbackCause)
	}
}

// runInjected is the algo subcommand's resilient path: the iterative
// kernels with resilient wrappers run under the parsed fault plan.
func runInjected(dev *simt.Device, g *graph.CSR, name string, src graph.VertexID,
	opts gpualgo.Options, spec string, retries, iters int,
	edgeWeights func() []int32, gname string, k int, dynamic bool) error {
	plan, err := parseFaultPlan(spec)
	if err != nil {
		return err
	}
	if retries < 1 {
		// resilient.Policy treats 0 as "use the default budget", so an
		// explicit 0 here would silently retry anyway; reject it instead.
		return fmt.Errorf("-retries must be >= 1 (got %d)", retries)
	}
	dev.SetFaultPlan(plan)
	pol := resilient.Policy{MaxRetries: retries}

	var (
		out    resilient.Outcome
		stats  *simt.LaunchStats
		rounds int
		note   string
	)
	switch name {
	case "bfs":
		res, err := resilient.BFS(dev, g, src, opts, pol)
		if err != nil {
			return err
		}
		out = res.Outcome
		note = fmt.Sprintf("depth %d", res.Depth)
		if res.GPU != nil {
			stats, rounds = &res.GPU.Stats, res.GPU.Iterations
		}
	case "sssp":
		res, err := resilient.SSSP(dev, g, edgeWeights(), src, opts, pol)
		if err != nil {
			return err
		}
		out = res.Outcome
		reached := 0
		for _, d := range res.Dist {
			if d < cpualgo.InfDist {
				reached++
			}
		}
		note = fmt.Sprintf("%d reachable", reached)
		if res.GPU != nil {
			stats, rounds = &res.GPU.Stats, res.GPU.Iterations
		}
	case "pagerank":
		res, err := resilient.PageRank(dev, g, gpualgo.PageRankOptions{Options: opts, Iterations: iters}, pol)
		if err != nil {
			return err
		}
		out = res.Outcome
		var sum float64
		for _, r := range res.Ranks {
			sum += float64(r)
		}
		note = fmt.Sprintf("rank sum %.4f", sum)
		if res.GPU != nil {
			stats, rounds = &res.GPU.Stats, res.GPU.Iterations
		}
	default:
		return fmt.Errorf("-inject supports bfs, sssp, pagerank (got %q)", name)
	}

	cfg := dev.Config()
	fmt.Printf("graph    %s (%s)\n", gname, graph.Stats(g))
	fmt.Printf("kernel   %s  K=%d dynamic=%v  inject=%s  [%s]\n", name, k, dynamic, spec, note)
	printOutcome(os.Stdout, out)
	if stats != nil {
		fmt.Printf("rounds   %d\n", rounds)
		fmt.Printf("cycles   %d (%.3f ms at %.1f GHz)\n", stats.Cycles, stats.TimeMS(cfg.ClockGHz), cfg.ClockGHz)
	}
	return nil
}
