package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"maxwarp/internal/serve"
	"maxwarp/internal/simt"
)

// cmdServe runs the graph-analytics daemon: a pool of simulated devices
// behind a bounded admission queue, serving BFS/SSSP/PageRank/CC queries
// over pre-loaded graphs with quotas, deadlines, circuit breakers, and
// graceful drain on SIGTERM. See docs/SERVICE.md.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8321", "listen address (use :0 for an ephemeral port)")
	addrFile := fs.String("addr-file", "", "write the bound address to this file (for scripts using :0)")
	devices := fs.Int("devices", 2, "simulated device pool size")
	graphs := fs.String("graphs", "wiki=WikiTalk-like:10,road=RoadNet-like:10",
		"comma-separated graph specs: name=Preset:scale[:seed] or name=@file.gr")
	queue := fs.Int("queue", 64, "admission queue depth")
	deadline := fs.Duration("deadline", 2*time.Second, "default per-request deadline")
	maxDeadline := fs.Duration("max-deadline", 30*time.Second, "cap on client-requested deadlines")
	cps := fs.Int64("cps", 25_000_000, "service clock: simulated cycles per wall second (deadline -> MaxCycles)")
	k := fs.Int("k", 32, "default virtual-warp width K")
	qps := fs.Float64("qps", 0, "per-tenant sustained quota in requests/s (0 = unlimited)")
	burst := fs.Float64("burst", 0, "per-tenant quota burst (default: same as -qps)")
	cache := fs.Int("cache", 256, "result cache entries (negative disables)")
	breakerN := fs.Int("breaker-threshold", 3, "consecutive failures tripping a device breaker")
	cooldown := fs.Duration("breaker-cooldown", 250*time.Millisecond, "breaker open->half-open cooldown")
	recycle := fs.Int64("recycle", 512, "recreate a device every N served requests (negative disables)")
	inject := fs.String("inject", "", "chaos: fault plans per device, 'DEV:SPEC[;DEV:SPEC...]' (DEV=all for every device); SPEC as in 'maxwarp bfs -inject'")
	sms := fs.Int("sms", 0, "SMs per simulated device (0 = simulator default)")
	mutateMax := fs.Int("mutate-max-batch", 0, "max mutations per /mutate batch (0 = default 4096, negative = unbounded)")
	mutateRebase := fs.Int("mutate-rebase", 0, "auto-rebase a graph's delta overlay past this many pending ops (0 = default 1024, negative disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var specs []serve.GraphSpec
	for _, arg := range strings.Split(*graphs, ",") {
		arg = strings.TrimSpace(arg)
		if arg == "" {
			continue
		}
		spec, err := serve.ParseGraphSpec(arg)
		if err != nil {
			return err
		}
		specs = append(specs, spec)
	}

	plans, err := parseDevicePlans(*inject)
	if err != nil {
		return err
	}

	dev := simt.DefaultConfig()
	dev.ParallelSMs = 1 // every serve launch carries OnProgress, which forces the sequential loop
	if *sms > 0 {
		dev.NumSMs = *sms
	}
	cfg := serve.Config{
		Graphs:                specs,
		Devices:               *devices,
		DeviceConfig:          &dev,
		FaultPlans:            plans,
		QueueDepth:            *queue,
		DefaultDeadline:       *deadline,
		MaxDeadline:           *maxDeadline,
		CyclesPerSecond:       *cps,
		DefaultK:              *k,
		Quota:                 serve.QuotaConfig{Default: serve.TenantQuota{RatePerSec: *qps, Burst: *burst}},
		CacheEntries:          *cache,
		BreakerThreshold:      *breakerN,
		BreakerCooldown:       *cooldown,
		RecycleEvery:          *recycle,
		MutateMaxBatch:        *mutateMax,
		MutateRebaseThreshold: *mutateRebase,
	}

	s, err := serve.New(cfg)
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound), 0o644); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "maxwarp serve: listening on %s (%d devices, %d graphs)\n", bound, *devices, len(specs))

	s.Start()
	httpSrv := &http.Server{Handler: s.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "maxwarp serve: draining...")
	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "maxwarp serve: forced drain: %v\n", err)
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "maxwarp serve: drained cleanly")
	return nil
}

// parseDevicePlans parses the serve -inject flag: "0:loss=8000;1:abort=3"
// or "all:bitflip=5,seed=9".
func parseDevicePlans(spec string) (map[int]*simt.FaultPlan, error) {
	if spec == "" {
		return nil, nil
	}
	plans := make(map[int]*simt.FaultPlan)
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		devStr, planSpec, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("serve -inject %q: want DEV:SPEC", part)
		}
		plan, err := parseFaultPlan(planSpec)
		if err != nil {
			return nil, err
		}
		if devStr == "all" {
			plans[-1] = plan
			continue
		}
		dev, err := strconv.Atoi(devStr)
		if err != nil || dev < 0 {
			return nil, fmt.Errorf("serve -inject %q: bad device %q", part, devStr)
		}
		plans[dev] = plan
	}
	return plans, nil
}
