package main

import (
	"flag"
	"fmt"

	"maxwarp/internal/gengraph"
	"maxwarp/internal/gpualgo"
	"maxwarp/internal/graph"
	"maxwarp/internal/simt"
	"maxwarp/internal/xrand"
)

// algoNames lists every kernel runAlgoOnce can dispatch, in display order.
var algoNames = []string{
	"bfs", "bfsfrontier", "bfsdir", "sssp", "deltastep", "pagerank",
	"cc", "scc", "nbrsum", "spmv", "triangles", "kcore", "mis",
	"coloring", "bc", "closeness", "msbfs",
}

// algoRun summarizes one kernel run for the CLI printers.
type algoRun struct {
	stats  simt.LaunchStats
	rounds int
	note   string
}

// algoParams carries the per-kernel tuning knobs that only some kernels
// read (seed for priorities/weights, k for kcore, iteration and sample
// counts) so runAlgoOnce keeps one signature across all dispatch cases.
type algoParams struct {
	seed    uint64
	coreK   int
	iters   int
	samples int
	// edgeWeights lazily supplies weights for the SSSP variants.
	edgeWeights func() []int32
}

// cmdAlgo runs any of the library's kernels once and prints its stats — the
// generic sibling of the bfs subcommand.
func cmdAlgo(args []string) error {
	fs := flag.NewFlagSet("algo", flag.ContinueOnError)
	name := fs.String("name", "bfs", "bfs | bfsfrontier | bfsdir | sssp | deltastep | pagerank | cc | scc | nbrsum | spmv | triangles | kcore | mis | coloring | bc | closeness | msbfs")
	preset := fs.String("preset", "", "workload preset name (see 'maxwarp list')")
	file := fs.String("graph", "", "graph file (.bin or edge list)")
	scale := fs.Int("scale", 12, "log2 vertices for presets")
	seed := fs.Uint64("seed", 42, "generator seed")
	k := fs.Int("k", 32, "virtual warp width (1 = thread-per-vertex baseline)")
	dynamic := fs.Bool("dynamic", false, "dynamic workload distribution")
	coreK := fs.Int("corek", 2, "k for the kcore kernel")
	iters := fs.Int("iters", 10, "iterations for pagerank")
	samples := fs.Int("samples", 4, "landmark samples for closeness")
	inject := fs.String("inject", "", "fault-injection spec (bfs, sssp, pagerank only): abort=N,bitflip=N,buffers=a|b,loss=N,seed=N,maxfaults=N")
	retries := fs.Int("retries", 3, "per-iteration retry budget under -inject (min 1)")
	parallel := fs.Int("parallel", 0, "host goroutines driving SMs (0 = one per CPU, 1 = sequential event loop)")
	sanitized := fs.Bool("sanitize", false, "run under the kernel sanitizer and report hazards after the stats")
	sinks := addObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, gname, fileWeights, err := loadWorkloadWeighted(*preset, *file, *scale, *seed)
	if err != nil {
		return err
	}
	edgeWeights := func() []int32 {
		if fileWeights != nil {
			return fileWeights
		}
		return gengraph.EdgeWeights(g, 16, *seed)
	}
	dcfg := simt.DefaultConfig()
	dcfg.ParallelSMs = *parallel
	dcfg.Sanitize = *sanitized
	dev, err := simt.NewDevice(dcfg)
	if err != nil {
		return err
	}
	san := armSanitizer(dev, *sanitized)
	sinks.arm(dev, 64, 4096)
	opts := gpualgo.Options{K: *k, Dynamic: *dynamic, Metrics: sinks.metrics}
	src := graph.LargestOutComponentSeed(g)

	if *inject != "" {
		return runInjected(dev, g, *name, src, opts, *inject, *retries, *iters, edgeWeights, gname, *k, *dynamic)
	}

	params := algoParams{seed: *seed, coreK: *coreK, iters: *iters, samples: *samples, edgeWeights: edgeWeights}
	run, err := runAlgoOnce(dev, g, *name, src, opts, params)
	if err != nil {
		return err
	}

	cfg := dev.Config()
	fmt.Printf("graph    %s (%s)\n", gname, graph.Stats(g))
	fmt.Printf("kernel   %s  K=%d dynamic=%v  rounds=%d", *name, *k, *dynamic, run.rounds)
	if run.note != "" {
		fmt.Printf("  [%s]", run.note)
	}
	fmt.Println()
	fmt.Printf("cycles   %d (%.3f ms at %.1f GHz)\n", run.stats.Cycles, run.stats.TimeMS(cfg.ClockGHz), cfg.ClockGHz)
	fmt.Printf("stats    %s\n", run.stats.String())
	if err := sinks.flush(&run.stats); err != nil {
		return err
	}
	return reportSanitizer(san, false)
}

// runAlgoOnce dispatches one named kernel over g and returns its stats —
// shared by the algo and sanitize subcommands. Kernels whose preconditions
// demand an undirected simple graph (cc, triangles, kcore, mis, coloring)
// get the symmetrized closure, exactly as their doc comments require.
func runAlgoOnce(dev *simt.Device, g *graph.CSR, name string, src graph.VertexID, opts gpualgo.Options, p algoParams) (algoRun, error) {
	var out algoRun
	switch name {
	case "bfs", "bfsfrontier":
		dg := gpualgo.Upload(dev, g)
		var res *gpualgo.BFSResult
		var err error
		if name == "bfs" {
			res, err = gpualgo.BFS(dev, dg, src, opts)
		} else {
			res, err = gpualgo.BFSFrontier(dev, dg, src, opts)
		}
		if err != nil {
			return out, err
		}
		out.stats, out.rounds = res.Stats, res.Iterations
		out.note = fmt.Sprintf("depth %d", res.Depth)
	case "bfsdir":
		res, err := gpualgo.BFSDirectionOpt(dev, g, src, gpualgo.DirOptions{Options: opts})
		if err != nil {
			return out, err
		}
		out.stats, out.rounds = res.Stats, res.Iterations
		out.note = fmt.Sprintf("depth %d", res.Depth)
	case "sssp":
		dg, err := gpualgo.UploadWeighted(dev, g, p.edgeWeights())
		if err != nil {
			return out, err
		}
		res, err := gpualgo.SSSP(dev, dg, src, opts)
		if err != nil {
			return out, err
		}
		out.stats, out.rounds = res.Stats, res.Iterations
	case "deltastep":
		dg, err := gpualgo.UploadWeighted(dev, g, p.edgeWeights())
		if err != nil {
			return out, err
		}
		res, err := gpualgo.DeltaStepping(dev, dg, src, gpualgo.DeltaSteppingOptions{Options: opts})
		if err != nil {
			return out, err
		}
		out.stats, out.rounds = res.Stats, res.Iterations
	case "pagerank":
		res, err := gpualgo.PageRank(dev, g, gpualgo.PageRankOptions{Options: opts, Iterations: p.iters})
		if err != nil {
			return out, err
		}
		out.stats, out.rounds = res.Stats, res.Iterations
	case "cc":
		sym, err := g.Symmetrize()
		if err != nil {
			return out, err
		}
		dg := gpualgo.Upload(dev, sym)
		res, err := gpualgo.ConnectedComponents(dev, dg, opts)
		if err != nil {
			return out, err
		}
		out.stats, out.rounds = res.Stats, res.Iterations
	case "nbrsum":
		dg := gpualgo.Upload(dev, g)
		values := make([]int32, g.NumVertices())
		for i := range values {
			values[i] = int32(i)
		}
		res, err := gpualgo.NeighborSum(dev, dg, values, opts)
		if err != nil {
			return out, err
		}
		out.stats, out.rounds = res.Stats, res.Iterations
	case "spmv":
		r := xrand.New(p.seed)
		vals := make([]float32, g.NumEdges())
		for i := range vals {
			vals[i] = float32(r.Float64())
		}
		x := make([]float32, g.NumVertices())
		for i := range x {
			x[i] = float32(r.Float64())
		}
		dg := gpualgo.Upload(dev, g)
		res, err := gpualgo.SpMV(dev, dg, vals, x, opts)
		if err != nil {
			return out, err
		}
		out.stats, out.rounds = res.Stats, res.Iterations
	case "triangles":
		sym, err := g.Symmetrize()
		if err != nil {
			return out, err
		}
		res, err := gpualgo.TriangleCount(dev, sym, opts)
		if err != nil {
			return out, err
		}
		out.stats, out.rounds = res.Stats, res.Iterations
		out.note = fmt.Sprintf("%d triangles", res.Total)
	case "kcore":
		sym, err := g.Symmetrize()
		if err != nil {
			return out, err
		}
		dg := gpualgo.Upload(dev, sym)
		res, err := gpualgo.KCore(dev, dg, int32(p.coreK), opts)
		if err != nil {
			return out, err
		}
		out.stats, out.rounds = res.Stats, res.Iterations
		out.note = fmt.Sprintf("|%d-core| = %d", p.coreK, res.Remaining)
	case "mis":
		sym, err := g.Symmetrize()
		if err != nil {
			return out, err
		}
		dg := gpualgo.Upload(dev, sym)
		res, err := gpualgo.MIS(dev, dg, p.seed, opts)
		if err != nil {
			return out, err
		}
		out.stats, out.rounds = res.Stats, res.Iterations
		out.note = fmt.Sprintf("|MIS| = %d", res.Size)
	case "coloring":
		sym, err := g.Symmetrize()
		if err != nil {
			return out, err
		}
		dg := gpualgo.Upload(dev, sym)
		res, err := gpualgo.GraphColoring(dev, dg, p.seed, opts)
		if err != nil {
			return out, err
		}
		out.stats, out.rounds = res.Stats, res.Iterations
		out.note = fmt.Sprintf("%d colors", res.NumColors)
	case "scc":
		res, err := gpualgo.SCC(dev, g, opts)
		if err != nil {
			return out, err
		}
		out.stats, out.rounds = res.Stats, res.Iterations
		out.note = fmt.Sprintf("%d components, %d trimmed", res.Components, res.Trimmed)
	case "bc":
		srcs := []graph.VertexID{src}
		res, err := gpualgo.BetweennessCentrality(dev, g, srcs, opts)
		if err != nil {
			return out, err
		}
		out.stats, out.rounds = res.Stats, res.Iterations
		var top float32
		for _, s := range res.Scores {
			if s > top {
				top = s
			}
		}
		out.note = fmt.Sprintf("max score %.1f (1 source)", top)
	case "closeness":
		res, err := gpualgo.ClosenessCentrality(dev, g, p.samples, p.seed, opts)
		if err != nil {
			return out, err
		}
		out.stats, out.rounds = res.Stats, res.Iterations
		out.note = fmt.Sprintf("%d landmark samples", len(res.Sources))
	case "msbfs":
		dg := gpualgo.Upload(dev, g)
		res, err := gpualgo.MSBFS(dev, dg, []graph.VertexID{src, 0}, opts)
		if err != nil {
			return out, err
		}
		out.stats, out.rounds = res.Stats, res.Iterations
		out.note = "2 sources, bit-parallel"
	default:
		return out, fmt.Errorf("unknown kernel %q", name)
	}
	return out, nil
}
