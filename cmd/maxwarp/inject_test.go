package main

import (
	"reflect"
	"testing"

	"maxwarp/internal/simt"
)

func TestParseFaultPlan(t *testing.T) {
	plan, err := parseFaultPlan("abort=3,bitflip=2,buffers=bfs.levels|graph.col,loss=500,seed=7,maxfaults=4")
	if err != nil {
		t.Fatal(err)
	}
	want := &simt.FaultPlan{
		Seed:                  7,
		AbortEvery:            3,
		BitFlipEvery:          2,
		Buffers:               []string{"bfs.levels", "graph.col"},
		DeviceLossAfterCycles: 500,
		MaxFaults:             4,
	}
	if !reflect.DeepEqual(plan, want) {
		t.Fatalf("plan = %+v, want %+v", plan, want)
	}
}

func TestParseFaultPlanRejectsBadSpecs(t *testing.T) {
	for _, spec := range []string{
		"",                   // schedules nothing
		"seed=7",             // schedules nothing
		"abort",              // not key=value
		"abort=x",            // not a number
		"abort=-1",           // negative
		"frobnicate=3",       // unknown key
		"abort=3,oops=yes",   // one bad pair poisons the spec
		"bitflip=1,buffers=", // empty buffer name would silently disable flips
		"bitflip=1,buffers=a||b",
	} {
		if _, err := parseFaultPlan(spec); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
}

func TestBFSInjectFlagEndToEnd(t *testing.T) {
	if err := run([]string{"bfs", "-scale", "7", "-inject", "abort=3,seed=7"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"bfs", "-scale", "7", "-inject", "loss=2000"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"bfs", "-scale", "7", "-inject", "bogus"}); err == nil {
		t.Fatal("bad inject spec accepted")
	}
	if err := run([]string{"bfs", "-scale", "7", "-inject", "abort=3", "-retries", "0"}); err == nil {
		t.Fatal("-retries 0 accepted (would silently use the default budget)")
	}
}

func TestAlgoInjectFlagEndToEnd(t *testing.T) {
	for _, name := range []string{"sssp", "pagerank"} {
		if err := run([]string{"algo", "-name", name, "-scale", "7", "-inject", "abort=4,seed=3"}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if err := run([]string{"algo", "-name", "triangles", "-scale", "7", "-inject", "abort=4"}); err == nil {
		t.Fatal("-inject with unsupported kernel accepted")
	}
}
