// Benchmarks regenerating every table and figure of the paper's evaluation
// (see DESIGN.md's experiment index). Each BenchmarkE* target runs the
// corresponding harness experiment; kernel-level benchmarks below them
// expose the headline contrast directly with simulated-cycle metrics.
//
// Run everything:   go test -bench=. -benchmem
// One experiment:   go test -bench=BenchmarkE4 -benchtime=1x
// Bigger inputs:    MAXWARP_BENCH_SCALE=12 go test -bench=. -benchtime=1x
package maxwarp_test

import (
	"os"
	"strconv"
	"testing"

	"maxwarp"
)

func benchScale() int {
	if s := os.Getenv("MAXWARP_BENCH_SCALE"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v >= 6 {
			return v
		}
	}
	return 9
}

func benchConfig() maxwarp.ExperimentConfig {
	return maxwarp.ExperimentConfig{Scale: benchScale(), Seed: 42}
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := maxwarp.ExperimentByID(id)
	if err != nil {
		b.Fatal(err)
	}
	cfg := benchConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tables, err := e.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(tables) == 0 || len(tables[0].Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

// BenchmarkE1GraphGen regenerates Table E1 (graph instances & statistics).
func BenchmarkE1GraphGen(b *testing.B) { runExperiment(b, "E1") }

// BenchmarkE2DegreeHistogram regenerates the degree-distribution figure.
func BenchmarkE2DegreeHistogram(b *testing.B) { runExperiment(b, "E2") }

// BenchmarkE3BaselineVsCPU regenerates the GPU-baseline-vs-CPU comparison.
func BenchmarkE3BaselineVsCPU(b *testing.B) { runExperiment(b, "E3") }

// BenchmarkE4WarpSizeSweep regenerates the headline warp-width speedup figure.
func BenchmarkE4WarpSizeSweep(b *testing.B) { runExperiment(b, "E4") }

// BenchmarkE5UtilImbalance regenerates the utilization/imbalance trade-off figure.
func BenchmarkE5UtilImbalance(b *testing.B) { runExperiment(b, "E5") }

// BenchmarkE6DeferOutliers regenerates the outlier-deferral figure.
func BenchmarkE6DeferOutliers(b *testing.B) { runExperiment(b, "E6") }

// BenchmarkE7DynamicWorkload regenerates the dynamic-distribution figure.
func BenchmarkE7DynamicWorkload(b *testing.B) { runExperiment(b, "E7") }

// BenchmarkE8OtherApps regenerates the other-applications table.
func BenchmarkE8OtherApps(b *testing.B) { runExperiment(b, "E8") }

// BenchmarkE9Scaling regenerates the size-scaling figure.
func BenchmarkE9Scaling(b *testing.B) { runExperiment(b, "E9") }

// BenchmarkE10Coalescing regenerates the coalescing analysis.
func BenchmarkE10Coalescing(b *testing.B) { runExperiment(b, "E10") }

// BenchmarkE11SpMV regenerates the scalar-vs-vector CSR SpMV comparison.
func BenchmarkE11SpMV(b *testing.B) { runExperiment(b, "E11") }

// BenchmarkE12QuadraticVsFrontier regenerates the BFS-formulation comparison.
func BenchmarkE12QuadraticVsFrontier(b *testing.B) { runExperiment(b, "E12") }

// BenchmarkE13IrregularKernels regenerates the extra-kernels table.
func BenchmarkE13IrregularKernels(b *testing.B) { runExperiment(b, "E13") }

// BenchmarkE14DirectionOptimizing regenerates the push/pull/hybrid table.
func BenchmarkE14DirectionOptimizing(b *testing.B) { runExperiment(b, "E14") }

// BenchmarkE15DegreeSortRelabel regenerates the relabeling comparison.
func BenchmarkE15DegreeSortRelabel(b *testing.B) { runExperiment(b, "E15") }

// BenchmarkE16DeltaStepping regenerates the SSSP-formulation comparison.
func BenchmarkE16DeltaStepping(b *testing.B) { runExperiment(b, "E16") }

// BenchmarkE17MSBFS regenerates the multi-source-BFS batching comparison.
func BenchmarkE17MSBFS(b *testing.B) { runExperiment(b, "E17") }

// BenchmarkE18SCC regenerates the SCC decomposition comparison.
func BenchmarkE18SCC(b *testing.B) { runExperiment(b, "E18") }

// BenchmarkA1ResidencySweep runs the latency-hiding ablation.
func BenchmarkA1ResidencySweep(b *testing.B) { runExperiment(b, "A1") }

// BenchmarkA2SegmentSweep runs the coalescing-granularity ablation.
func BenchmarkA2SegmentSweep(b *testing.B) { runExperiment(b, "A2") }

// BenchmarkA3CacheAblation runs the read-only-cache ablation.
func BenchmarkA3CacheAblation(b *testing.B) { runExperiment(b, "A3") }

// BenchmarkA4SchedulerPolicy runs the warp-scheduler ablation.
func BenchmarkA4SchedulerPolicy(b *testing.B) { runExperiment(b, "A4") }

// --- kernel-level benchmarks: the headline contrast, directly -------------

func benchBFS(b *testing.B, k int, dynamic bool, deferTh int32) {
	g, err := maxwarp.RMAT(benchScale(), 16, maxwarp.DefaultRMATParams, 42)
	if err != nil {
		b.Fatal(err)
	}
	var cycles int64
	var edges int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dev, err := maxwarp.NewDevice(maxwarp.DefaultDeviceConfig())
		if err != nil {
			b.Fatal(err)
		}
		dg, err := maxwarp.UploadGraph(dev, g)
		if err != nil {
			b.Fatal(err)
		}
		res, err := maxwarp.BFS(dev, dg, 0, maxwarp.Options{
			K: k, Dynamic: dynamic, DeferThreshold: deferTh,
		})
		if err != nil {
			b.Fatal(err)
		}
		cycles += res.Stats.Cycles
		edges += int64(g.NumEdges())
	}
	b.ReportMetric(float64(cycles)/float64(b.N)/1e6, "Mcycles/op")
	b.ReportMetric(float64(edges)/(float64(cycles)/(1.4*1e9))/1e6, "simMTEPS")
}

// BenchmarkBFSBaseline is thread-per-vertex BFS on a skewed RMAT graph.
func BenchmarkBFSBaseline(b *testing.B) { benchBFS(b, 1, false, 0) }

// BenchmarkBFSWarpCentric is the paper's K=32 mapping on the same graph.
func BenchmarkBFSWarpCentric(b *testing.B) { benchBFS(b, 32, false, 0) }

// BenchmarkBFSWarpCentricDynamic adds dynamic workload distribution.
func BenchmarkBFSWarpCentricDynamic(b *testing.B) { benchBFS(b, 32, true, 0) }

// BenchmarkBFSWarpCentricDefer adds outlier deferral (threshold 64).
func BenchmarkBFSWarpCentricDefer(b *testing.B) { benchBFS(b, 8, false, 64) }

// BenchmarkCPUBFSSequential measures the host-side oracle for scale context.
func BenchmarkCPUBFSSequential(b *testing.B) {
	g, err := maxwarp.RMAT(benchScale(), 16, maxwarp.DefaultRMATParams, 42)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		maxwarp.BFSCPU(g, 0)
	}
}

// BenchmarkCPUBFSParallel measures the multicore host BFS.
func BenchmarkCPUBFSParallel(b *testing.B) {
	g, err := maxwarp.RMAT(benchScale(), 16, maxwarp.DefaultRMATParams, 42)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		maxwarp.BFSCPUParallel(g, 0, 0)
	}
}

// BenchmarkGraphGenRMAT measures generator throughput.
func BenchmarkGraphGenRMAT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := maxwarp.RMAT(benchScale(), 16, maxwarp.DefaultRMATParams, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
